// Stats snapshots: the line-delimited JSON heartbeat format and its tooling.
//
// `ozz_fuzz --stats-interval=N` emits one StatsSnapshot per heartbeat (and a
// final one at campaign end, SIGINT included) as a single JSON line. A
// snapshot is self-contained: profiler phases, hot sites resolved to their
// source location *at write time* (InstrIds are process-local, so a reader
// in another process could not resolve them), the profiler's path counters,
// and the campaign's metrics-registry delta. `ozz_stat` parses the stream
// back, renders per-phase breakdowns and top-N hottest sites, diffs two
// snapshots, and emits folded stacks for flamegraph.pl / speedscope.
//
// Layering: obs only. The resolver indirection is the same InstrResolver the
// trace container uses (src/obs/trace_io.h).
#ifndef OZZ_SRC_OBS_STATS_IO_H_
#define OZZ_SRC_OBS_STATS_IO_H_

#include <string>
#include <vector>

#include "src/base/ids.h"
#include "src/obs/metrics.h"
#include "src/obs/prof.h"
#include "src/obs/trace_io.h"

namespace ozz::obs {

// A profiled site with its resolved source location. `file` empty = the id
// was not in the instruction table when the snapshot was written.
struct StatsSite {
  std::string phase;
  InstrId instr = kInvalidInstr;
  u64 hits = 0;
  u64 ticks = 0;
  std::string file;
  std::string function;
  u32 line = 0;
};

struct StatsSnapshot {
  std::string kind = "heartbeat";  // "heartbeat" | "final" | "diff"
  u64 seq = 0;
  u64 elapsed_us = 0;  // since campaign start
  u64 ticks_per_sec = 0;
  std::vector<ProfSnapshot::PhaseStat> phases;
  std::vector<StatsSite> sites;
  std::map<std::string, u64> prof_counters;
  MetricsSnapshot metrics;
};

// Combines a profiler snapshot and a metrics delta, resolving every site id
// through `resolver` (may be null: sites stay unresolved, rendered as
// "instr#N").
StatsSnapshot BuildStatsSnapshot(const std::string& kind, u64 seq, u64 elapsed_us,
                                 const ProfSnapshot& prof, const MetricsSnapshot& metrics,
                                 const InstrResolver& resolver);

// One JSON line, no trailing newline.
std::string WriteStatsJson(const StatsSnapshot& snapshot);

bool ParseStatsJson(const std::string& line, StatsSnapshot* out,
                    std::string* error = nullptr);

// Reads a heartbeat stream (one JSON object per line; blank lines skipped).
// Returns false (with *error) on the first malformed line.
bool ReadStatsFile(const std::string& path, std::vector<StatsSnapshot>* out,
                   std::string* error = nullptr);

// end - begin per phase/site/counter/metric (clamped at zero; histogram max
// kept from `end`, like Metrics::Delta). Sites join on their resolved source
// location when available — stable across processes — falling back to the
// raw id. kind becomes "diff".
StatsSnapshot DiffStats(const StatsSnapshot& begin, const StatsSnapshot& end);

// "file:function:line" when resolved, "instr#N" otherwise.
std::string DescribeSite(const StatsSite& site);

// Human-readable report: per-phase time breakdown, top-N hottest sites,
// hint-check path counters, and the campaign metrics.
std::string RenderStats(const StatsSnapshot& snapshot, std::size_t top_n);

// Folded-stack lines ("frame;frame value"), one per phase (self time) and
// one per site under its phase — pipe into flamegraph.pl or load in
// speedscope.
std::string RenderFolded(const StatsSnapshot& snapshot);

}  // namespace ozz::obs

#endif  // OZZ_SRC_OBS_STATS_IO_H_
