#include "src/rt/machine.h"

#include <exception>
#include <utility>

#include "src/base/check.h"
#include "src/base/log.h"
#include "src/obs/trace.h"

namespace ozz::rt {
namespace {

thread_local Machine* tls_machine = nullptr;
thread_local SimThread* tls_thread = nullptr;

}  // namespace

SimThread::SimThread(Machine* machine, ThreadId id, CpuId cpu, std::string name,
                     std::function<void()> body)
    : machine_(machine), id_(id), cpu_(cpu), name_(std::move(name)), body_(std::move(body)) {}

u32 SimThread::hits(InstrId instr) const {
  auto it = instr_hits_.find(instr);
  return it == instr_hits_.end() ? 0 : it->second;
}

Machine::Machine(int num_cpus) : num_cpus_(num_cpus) { OZZ_CHECK(num_cpus > 0); }

Machine::~Machine() { OZZ_CHECK_MSG(!running_, "Machine destroyed while running"); }

ThreadId Machine::AddThread(std::string name, CpuId cpu, std::function<void()> body) {
  OZZ_CHECK(!running_);
  OZZ_CHECK(cpu >= 0 && cpu < num_cpus_);
  ThreadId id = static_cast<ThreadId>(threads_.size());
  threads_.push_back(
      std::make_unique<SimThread>(this, id, cpu, std::move(name), std::move(body)));
  return id;
}

Machine* Machine::Current() { return tls_machine; }
SimThread* Machine::CurrentThread() { return tls_thread; }

int Machine::Run() {
  if (threads_.empty()) {
    return 0;
  }
  {
    std::unique_lock<std::mutex> lock(lock_);
    running_ = true;
    plan_cursor_ = 0;
    context_switches_ = 0;
    finished_count_ = 0;
  }
  for (auto& t : threads_) {
    t->os_thread_ = std::thread([this, raw = t.get()] { ThreadMain(raw); });
  }
  {
    std::unique_lock<std::mutex> lock(lock_);
    // Wait for every thread to park in kReady before granting the token so
    // the initial thread choice is honored regardless of OS scheduling.
    done_cv_.wait(lock, [this] {
      for (const auto& t : threads_) {
        if (t->state_ == SimThread::State::kNotStarted) {
          return false;
        }
      }
      return true;
    });
    ThreadId first = plan_.first;
    if (first < 0 || static_cast<std::size_t>(first) >= threads_.size()) {
      first = 0;
    }
    SimThread* t0 = threads_[static_cast<std::size_t>(first)].get();
    t0->state_ = SimThread::State::kRunning;
    t0->cv_.notify_one();
    done_cv_.wait(lock,
                  [this] { return finished_count_ == static_cast<int>(threads_.size()); });
    running_ = false;
  }
  for (auto& t : threads_) {
    t->os_thread_.join();
    if (t->had_uncaught_exception_) {
      OZZ_LOG(Error) << "simulated thread '" << t->name_ << "' exited with uncaught exception";
    }
  }
  return context_switches_;
}

void Machine::ThreadMain(SimThread* t) {
  tls_machine = this;
  tls_thread = t;
  try {
    {
      std::unique_lock<std::mutex> lock(lock_);
      t->state_ = SimThread::State::kReady;
      done_cv_.notify_all();
      WaitForToken(lock, t);
    }
    t->body_();
  } catch (const ThreadKilled&) {
    // Torn down after a simulated kernel crash; nothing to do.
  } catch (...) {
    t->had_uncaught_exception_ = true;
  }
  {
    std::unique_lock<std::mutex> lock(lock_);
    SimThread* next = NextReady(t->id_);
    SwitchLocked(lock, t, next, /*from_finished=*/true);
  }
  tls_machine = nullptr;
  tls_thread = nullptr;
}

SimThread* Machine::NextReady(ThreadId from) {
  std::size_t n = threads_.size();
  for (std::size_t step = 1; step <= n; ++step) {
    std::size_t idx = (static_cast<std::size_t>(from) + step) % n;
    SimThread* cand = threads_[idx].get();
    if (cand->id_ != from && cand->state_ == SimThread::State::kReady) {
      return cand;
    }
  }
  return nullptr;
}

void Machine::SwitchLocked(std::unique_lock<std::mutex>& lock, SimThread* from, SimThread* to,
                           bool from_finished) {
  if (from_finished) {
    from->state_ = SimThread::State::kFinished;
    ++finished_count_;
    if (finished_count_ == static_cast<int>(threads_.size())) {
      done_cv_.notify_all();
      return;
    }
    OZZ_CHECK_MSG(to != nullptr, "no ready thread left but machine not done");
  } else {
    OZZ_CHECK(to != nullptr);
    from->state_ = SimThread::State::kReady;
  }
  ++context_switches_;
  // The scheduler segment boundary — the anchor the hint-lifecycle triage
  // classifies store commits against.
  OZZ_TRACE_EMIT(obs::EvType::kSegmentSwitch, from->id_, 0, kInvalidInstr,
                 static_cast<u64>(from->id_), static_cast<u64>(to->id_));
  if (switch_hook_) {
    switch_hook_(from->id_, to->id_);
  }
  to->state_ = SimThread::State::kRunning;
  to->cv_.notify_one();
  if (!from_finished) {
    WaitForToken(lock, from);
  }
}

namespace {

// Unwinds a killed thread — but never while another exception is already in
// flight (a destructor performing an instrumented access mid-unwind must not
// turn into std::terminate).
void MaybeThrowKilled(std::unique_lock<std::mutex>& lock, const bool kill_requested) {
  if (kill_requested && std::uncaught_exceptions() == 0) {
    lock.unlock();
    throw ThreadKilled{};
  }
}

}  // namespace

void Machine::WaitForToken(std::unique_lock<std::mutex>& lock, SimThread* t) {
  t->cv_.wait(lock, [t] { return t->state_ == SimThread::State::kRunning; });
  MaybeThrowKilled(lock, t->kill_requested_);
}

void Machine::ArmPlan() {
  std::unique_lock<std::mutex> lock(lock_);
  for (auto& t : threads_) {
    t->instr_hits_.clear();
  }
  plan_armed_ = true;
}

void Machine::OnInstr(InstrId instr, SwitchWhen phase) {
  SimThread* cur = tls_thread;
  OZZ_CHECK_MSG(cur != nullptr, "OnInstr from a host thread");
  std::unique_lock<std::mutex> lock(lock_);
  MaybeThrowKilled(lock, cur->kill_requested_);
  if (!plan_armed_) {
    return;
  }
  if (phase == SwitchWhen::kBeforeAccess) {
    ++cur->instr_hits_[instr];
  }
  if (plan_cursor_ >= plan_.points.size()) {
    return;
  }
  const SchedPoint& pt = plan_.points[plan_cursor_];
  if (pt.instr != instr || pt.when != phase) {
    return;
  }
  if (pt.thread != kAnyThread && pt.thread != cur->id_) {
    return;
  }
  if (cur->instr_hits_[instr] != pt.occurrence) {
    return;
  }
  ++plan_cursor_;
  if (pt.fire_irq) {
    // Interrupt-injection point: deliver a virtual interrupt on the current
    // thread instead of switching. Delivery runs handler code that re-enters
    // OnInstr, so the lock must be dropped first.
    lock.unlock();
    InterruptSelf();
    return;
  }
  SimThread* next = nullptr;
  if (pt.next != kAnyThread) {
    SimThread* cand = threads_.at(static_cast<std::size_t>(pt.next)).get();
    if (cand->state_ == SimThread::State::kReady) {
      next = cand;
    }
  } else {
    next = NextReady(cur->id_);
  }
  if (next == nullptr) {
    // Target already finished (or never existed): consume the point and keep
    // running; the test degenerates into sequential execution.
    return;
  }
  SwitchLocked(lock, cur, next, /*from_finished=*/false);
}

bool Machine::Yield() {
  SimThread* cur = tls_thread;
  OZZ_CHECK_MSG(cur != nullptr, "Yield from a host thread");
  std::unique_lock<std::mutex> lock(lock_);
  MaybeThrowKilled(lock, cur->kill_requested_);
  SimThread* next = NextReady(cur->id_);
  if (next == nullptr) {
    return false;
  }
  SwitchLocked(lock, cur, next, /*from_finished=*/false);
  return true;
}

void Machine::InterruptSelf() {
  SimThread* cur = tls_thread;
  OZZ_CHECK_MSG(cur != nullptr, "InterruptSelf from a host thread");
  if (cur->irq_depth_ > 0 || cur->in_irq_) {
    // Masked (or already in a handler — nested hardirqs are not modelled):
    // leave the interrupt pending; the outermost IrqRestore delivers it.
    cur->irq_pending_ = true;
    OZZ_TRACE_EMIT(obs::EvType::kIrqDeferred, cur->id_, 0, kInvalidInstr,
                   static_cast<u64>(cur->irq_depth_), 0);
    return;
  }
  DeliverIrq(cur, /*was_deferred=*/false);
}

void Machine::DeliverIrq(SimThread* t, bool was_deferred) {
  t->in_irq_ = true;
  // A handler oops unwinds through here; in_irq_ must not stay stuck.
  struct InIrqReset {
    SimThread* t;
    ~InIrqReset() { t->in_irq_ = false; }
  } reset{t};
  OZZ_TRACE_EMIT(obs::EvType::kIrqDelivered, t->id_, 0, kInvalidInstr,
                 static_cast<u64>(was_deferred), 0);
  // Entering the hardirq drains the virtual store buffer (§3.1: interrupts
  // commit delayed stores), handlers run fully instrumented, and returning
  // from the handler drains whatever the handler itself delayed.
  if (interrupt_hook_) {
    interrupt_hook_(t->id_);
  }
  if (irq_dispatch_hook_) {
    irq_dispatch_hook_(t->id_);
    if (interrupt_hook_) {
      interrupt_hook_(t->id_);  // drain what the handler itself delayed
    }
  }
}

void Machine::IrqSave() {
  SimThread* cur = tls_thread;
  OZZ_CHECK_MSG(cur != nullptr, "IrqSave from a host thread");
  ++cur->irq_depth_;
}

void Machine::IrqRestore() {
  SimThread* cur = tls_thread;
  OZZ_CHECK_MSG(cur != nullptr, "IrqRestore from a host thread");
  OZZ_CHECK_MSG(cur->irq_depth_ > 0, "unbalanced IrqRestore");
  if (--cur->irq_depth_ == 0 && cur->irq_pending_ && !cur->in_irq_) {
    cur->irq_pending_ = false;
    DeliverIrq(cur, /*was_deferred=*/true);
  }
}

bool Machine::IrqsDisabled() const {
  SimThread* cur = tls_thread;
  return cur != nullptr && (cur->irq_depth_ > 0 || cur->in_irq_);
}

bool Machine::InIrq() const {
  SimThread* cur = tls_thread;
  return cur != nullptr && cur->in_irq_;
}

void Machine::KillOthers() {
  SimThread* cur = tls_thread;
  std::unique_lock<std::mutex> lock(lock_);
  for (auto& t : threads_) {
    if (cur == nullptr || t->id_ != cur->id_) {
      if (t->state_ != SimThread::State::kFinished) {
        t->kill_requested_ = true;
      }
    }
  }
}

}  // namespace ozz::rt
