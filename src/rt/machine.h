// Deterministic simulated machine.
//
// A Machine hosts a set of simulated kernel threads pinned to simulated CPUs.
// Exactly one simulated thread executes at any moment: the machine hands a
// run token between OS threads with a mutex/condvar pair. Because every
// shared-memory access of the simulated kernel is funneled through the OEMU
// instrumentation (which calls Machine::OnInstr), the machine can implement
// breakpoint-precise context switches — the same capability the paper obtains
// from its hypervisor-level custom scheduler (Appendix §10.3) — while all
// simulated-kernel state remains free of real data races.
#ifndef OZZ_SRC_RT_MACHINE_H_
#define OZZ_SRC_RT_MACHINE_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/base/ids.h"
#include "src/rt/sched_plan.h"

namespace ozz::rt {

class Machine;

// Thrown inside a simulated thread to unwind it immediately (e.g. after the
// simulated kernel has crashed and remaining threads must be torn down).
struct ThreadKilled {};

class SimThread {
 public:
  enum class State { kNotStarted, kReady, kRunning, kFinished };

  SimThread(Machine* machine, ThreadId id, CpuId cpu, std::string name,
            std::function<void()> body);

  ThreadId id() const { return id_; }
  CpuId cpu() const { return cpu_; }
  const std::string& name() const { return name_; }
  State state() const { return state_; }

  // Dynamic execution count of `instr` on this thread so far.
  u32 hits(InstrId instr) const;

 private:
  friend class Machine;

  Machine* machine_;
  ThreadId id_;
  CpuId cpu_;
  std::string name_;
  std::function<void()> body_;

  std::thread os_thread_;
  State state_ = State::kNotStarted;
  std::condition_variable cv_;
  std::unordered_map<InstrId, u32> instr_hits_;
  bool kill_requested_ = false;
  bool had_uncaught_exception_ = false;
  // Virtual local-irq state (local_irq_save nesting depth, a pending
  // deferred interrupt, and whether the thread is inside a handler right
  // now). Only ever touched by the owning simulated thread while it holds
  // the run token, so no locking is needed.
  int irq_depth_ = 0;
  bool irq_pending_ = false;
  bool in_irq_ = false;
};

class Machine {
 public:
  // Hook invoked (in simulated-thread context, token held) when the scheduler
  // delivers a virtual interrupt to a thread; OEMU registers one to flush the
  // virtual store buffer (§3.1: the buffer commits on interrupts).
  using InterruptHook = std::function<void(ThreadId)>;
  // Hook invoked when a simulated thread is context-switched away while its
  // body is still running. The custom scheduler suspends vCPUs *without*
  // raising interrupts, so this hook must not flush anything; it exists for
  // observability (tests assert that reordered state is visible mid-switch).
  using SwitchHook = std::function<void(ThreadId from, ThreadId to)>;
  // Hook that runs the simulated kernel's registered interrupt handlers on
  // the interrupted thread (osk::Kernel wires DispatchIrq here). Runs in
  // simulated-thread context between the two store-buffer flushes of a
  // delivery, so handler code is fully instrumented.
  using IrqDispatchHook = std::function<void(ThreadId)>;

  explicit Machine(int num_cpus);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int num_cpus() const { return num_cpus_; }

  // Registers a simulated thread. Must be called before Run().
  ThreadId AddThread(std::string name, CpuId cpu, std::function<void()> body);

  void SetPlan(SchedPlan plan) { plan_ = std::move(plan); }

  // Plans match against per-thread dynamic hit counts. When a plan should
  // apply to a specific syscall rather than the whole run (MTI execution),
  // disarm it first, then ArmPlan() right before the targeted syscall starts:
  // arming zeroes every thread's hit counters so occurrences are counted from
  // that point, matching how OZZ profiles occurrences per syscall.
  void SetPlanArmed(bool armed) { plan_armed_ = armed; }
  void ArmPlan();
  void SetInterruptHook(InterruptHook hook) { interrupt_hook_ = std::move(hook); }
  void SetSwitchHook(SwitchHook hook) { switch_hook_ = std::move(hook); }
  void SetIrqDispatchHook(IrqDispatchHook hook) { irq_dispatch_hook_ = std::move(hook); }

  // Runs all registered threads to completion under the current plan.
  // Returns the number of context switches performed.
  int Run();

  // --- Calls below are made from inside simulated threads. ---

  // Notifies the scheduler that `instr` is about to execute (kBeforeAccess)
  // or has just executed (kAfterAccess) on the calling thread. May context
  // switch if a scheduling point matches.
  void OnInstr(InstrId instr, SwitchWhen phase);

  // Cooperative yield: hand the token to another ready thread if one exists.
  // Returns false if the calling thread is the only runnable one.
  bool Yield();

  // Delivers a virtual interrupt to the calling thread. Models a device or
  // timer interrupt on the thread's CPU: the store buffer flushes (interrupt
  // hook), registered handlers run (irq dispatch hook), and the buffer
  // flushes again on return from the handler. If the calling thread has irqs
  // masked (IrqSave depth > 0) or is already inside a handler, the interrupt
  // is deferred and delivered at the matching IrqRestore — the local_irq_save
  // contract.
  void InterruptSelf();

  // local_irq_save / local_irq_restore for the calling simulated thread.
  // Nestable; the outermost IrqRestore delivers any interrupt deferred while
  // masked.
  void IrqSave();
  void IrqRestore();
  // True when the calling thread has irqs masked or runs in hardirq context.
  bool IrqsDisabled() const;
  // True while the calling thread is executing inside an interrupt handler.
  bool InIrq() const;

  // Requests that all simulated threads other than the caller unwind at their
  // next instrumentation point (used after a simulated kernel crash).
  void KillOthers();

  // Number of plan points consumed so far (for tests).
  std::size_t plan_points_consumed() const { return plan_cursor_; }
  int context_switches() const { return context_switches_; }

  SimThread* thread(ThreadId id) { return threads_.at(static_cast<std::size_t>(id)).get(); }
  std::size_t thread_count() const { return threads_.size(); }

  // The machine hosting the calling simulated thread, or nullptr when called
  // from a host thread.
  static Machine* Current();
  static SimThread* CurrentThread();

 private:
  void ThreadMain(SimThread* t);
  // Runs a delivery on the calling thread: flush, dispatch handlers, flush.
  // Must be called without lock_ held (handlers re-enter OnInstr).
  void DeliverIrq(SimThread* t, bool was_deferred);
  // Picks the next ready thread after `from` in round-robin order, or nullptr.
  SimThread* NextReady(ThreadId from);
  // Transfers the token from `from` (which must be the caller) to `to`;
  // blocks until `from` is scheduled again. `from_finished` marks the caller
  // finished instead of ready. Caller must hold lock_.
  void SwitchLocked(std::unique_lock<std::mutex>& lock, SimThread* from, SimThread* to,
                    bool from_finished);
  void WaitForToken(std::unique_lock<std::mutex>& lock, SimThread* t);

  int num_cpus_;
  std::vector<std::unique_ptr<SimThread>> threads_;
  SchedPlan plan_;
  bool plan_armed_ = true;
  std::size_t plan_cursor_ = 0;
  int context_switches_ = 0;

  InterruptHook interrupt_hook_;
  SwitchHook switch_hook_;
  IrqDispatchHook irq_dispatch_hook_;

  std::mutex lock_;
  std::condition_variable done_cv_;
  int finished_count_ = 0;
  bool running_ = false;
};

}  // namespace ozz::rt

#endif  // OZZ_SRC_RT_MACHINE_H_
