// Scheduling plans: the deterministic-interleaving input of the custom
// scheduler (paper Appendix §10.3, Figure 9).
//
// A plan is the reproduction's analogue of the hypercall stream a guest
// thread sends to the hypervisor scheduler: "run thread F first; when thread
// T executes dynamic occurrence N of instruction I, switch to thread X".
#ifndef OZZ_SRC_RT_SCHED_PLAN_H_
#define OZZ_SRC_RT_SCHED_PLAN_H_

#include <vector>

#include "src/base/ids.h"

namespace ozz::rt {

// Whether the context switch fires before or after the access executes.
// The hypothetical *load* barrier test interleaves right after the actual
// barrier, i.e. before the first access of the group executes (Fig. 5b);
// the *store* barrier test interleaves right before the actual barrier,
// i.e. after the last access of the group executes (Fig. 5a).
enum class SwitchWhen { kBeforeAccess, kAfterAccess };

struct SchedPoint {
  ThreadId thread = kAnyThread;  // thread that owns the breakpoint
  InstrId instr = kInvalidInstr;
  u32 occurrence = 1;  // 1-based dynamic execution count of `instr` on `thread`
  SwitchWhen when = SwitchWhen::kAfterAccess;
  ThreadId next = kAnyThread;  // kAnyThread: next ready thread round-robin
  // Instead of switching threads, deliver a virtual interrupt on the matching
  // thread (Machine::InterruptSelf semantics: deferred while irqs are masked).
  // `next` is ignored. This is how the fuzzer's STI pass injects an interrupt
  // at an exact dynamic instruction.
  bool fire_irq = false;
};

struct SchedPlan {
  ThreadId first = 0;  // thread granted the token initially
  std::vector<SchedPoint> points;  // consumed strictly in order
};

}  // namespace ozz::rt

#endif  // OZZ_SRC_RT_SCHED_PLAN_H_
