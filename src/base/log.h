// Minimal leveled logging for the OZZ reproduction.
//
// Logging is off by default (level kWarn) so the fuzzer's hot loop stays
// quiet; tests and examples raise the level explicitly.
#ifndef OZZ_SRC_BASE_LOG_H_
#define OZZ_SRC_BASE_LOG_H_

#include <sstream>
#include <string>

namespace ozz::base {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kNone = 4 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Sinks a fully formatted line; thread-safe.
void LogLine(LogLevel level, const std::string& line);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogVoidify {
  // Operator with lower precedence than << but higher than ?:.
  void operator&(std::ostream&) {}
};

}  // namespace detail
}  // namespace ozz::base

#define OZZ_LOG_IS_ON(lvl) (static_cast<int>(lvl) >= static_cast<int>(::ozz::base::GetLogLevel()))

#define OZZ_LOG(severity)                                                        \
  !OZZ_LOG_IS_ON(::ozz::base::LogLevel::k##severity)                             \
      ? (void)0                                                                  \
      : ::ozz::base::detail::LogVoidify() &                                      \
            ::ozz::base::detail::LogMessage(::ozz::base::LogLevel::k##severity,  \
                                            __FILE__, __LINE__)                  \
                .stream()

#endif  // OZZ_SRC_BASE_LOG_H_
