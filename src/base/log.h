// Minimal leveled logging for the OZZ reproduction.
//
// Logging is off by default (level kWarn) so the fuzzer's hot loop stays
// quiet; tests and examples raise the level explicitly.
//
// Every sunk line carries a monotonic timestamp (microseconds since process
// start) and a small dense id of the emitting OS thread, so interleaved
// output from the simulated machine's threads stays attributable:
//   [   0.513s] [t2] [W] machine.cc:82 ...
#ifndef OZZ_SRC_BASE_LOG_H_
#define OZZ_SRC_BASE_LOG_H_

#include <sstream>
#include <string>

#include "src/base/compiler.h"

namespace ozz::base {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kNone = 4 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Monotonic microseconds since the first call in this process.
u64 MonotonicMicros();

// Dense 1-based id of the calling OS thread, assigned on first use. Stable
// for the thread's lifetime; much shorter than std::thread::id in logs.
int CurrentLogThreadId();

// Sinks a fully formatted line; thread-safe. The sink prefixes the monotonic
// timestamp and the calling thread's id.
void LogLine(LogLevel level, const std::string& line);

// Like LogLine, but emits at most one line per `min_interval_us` for a given
// `key`; the rest are counted, and the next emitted line is suffixed with
// "(N suppressed)". For noisy conditions (e.g. trace-ring drops) that must
// be visible without per-event spam.
void LogLineRateLimited(LogLevel level, const std::string& key, u64 min_interval_us,
                        const std::string& line);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogVoidify {
  // Operator with lower precedence than << but higher than ?:.
  void operator&(std::ostream&) {}
};

}  // namespace detail
}  // namespace ozz::base

#define OZZ_LOG_IS_ON(lvl) (static_cast<int>(lvl) >= static_cast<int>(::ozz::base::GetLogLevel()))

#define OZZ_LOG(severity)                                                        \
  !OZZ_LOG_IS_ON(::ozz::base::LogLevel::k##severity)                             \
      ? (void)0                                                                  \
      : ::ozz::base::detail::LogVoidify() &                                      \
            ::ozz::base::detail::LogMessage(::ozz::base::LogLevel::k##severity,  \
                                            __FILE__, __LINE__)                  \
                .stream()

#endif  // OZZ_SRC_BASE_LOG_H_
