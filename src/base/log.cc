#include "src/base/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ozz::base {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

void LogLine(LogLevel level, const std::string& line) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), line.c_str());
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << base << ":" << line << " ";
}

LogMessage::~LogMessage() { LogLine(level_, stream_.str()); }

}  // namespace detail
}  // namespace ozz::base
