#include "src/base/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

namespace ozz::base {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

struct RateLimitState {
  u64 last_emit_us = 0;
  bool emitted_once = false;
  u64 suppressed = 0;
};

std::mutex g_rate_mutex;
std::map<std::string, RateLimitState>& RateLimits() {
  static std::map<std::string, RateLimitState>* limits =
      new std::map<std::string, RateLimitState>();
  return *limits;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

u64 MonotonicMicros() {
  static const std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count());
}

int CurrentLogThreadId() {
  static std::atomic<int> next{1};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void LogLine(LogLevel level, const std::string& line) {
  u64 us = MonotonicMicros();
  int tid = CurrentLogThreadId();
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%8.3fs] [t%d] [%s] %s\n", static_cast<double>(us) / 1e6, tid,
               LevelTag(level), line.c_str());
}

void LogLineRateLimited(LogLevel level, const std::string& key, u64 min_interval_us,
                        const std::string& line) {
  u64 now = MonotonicMicros();
  u64 suppressed = 0;
  {
    std::lock_guard<std::mutex> lock(g_rate_mutex);
    RateLimitState& state = RateLimits()[key];
    if (state.emitted_once && now - state.last_emit_us < min_interval_us) {
      ++state.suppressed;
      return;
    }
    state.last_emit_us = now;
    state.emitted_once = true;
    suppressed = state.suppressed;
    state.suppressed = 0;
  }
  if (suppressed > 0) {
    LogLine(level, line + " (" + std::to_string(suppressed) + " suppressed)");
  } else {
    LogLine(level, line);
  }
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << base << ":" << line << " ";
}

LogMessage::~LogMessage() { LogLine(level_, stream_.str()); }

}  // namespace detail
}  // namespace ozz::base
