// Shared identifier types.
//
// InstrId is the reproduction's stand-in for "the address of an instruction"
// (Table 2 of the paper): every instrumented memory access or barrier call
// site registers once and receives a stable id. It lives in base so that the
// scheduler (rt) can match breakpoints without depending on the OEMU runtime.
#ifndef OZZ_SRC_BASE_IDS_H_
#define OZZ_SRC_BASE_IDS_H_

#include "src/base/compiler.h"

namespace ozz {

// 0 is reserved as "no instruction".
using InstrId = u32;
inline constexpr InstrId kInvalidInstr = 0;

using ThreadId = i32;
using CpuId = i32;

inline constexpr ThreadId kAnyThread = -1;

}  // namespace ozz

#endif  // OZZ_SRC_BASE_IDS_H_
