// Compiler and platform helpers shared across the OZZ reproduction.
#ifndef OZZ_SRC_BASE_COMPILER_H_
#define OZZ_SRC_BASE_COMPILER_H_

#include <cstdint>

#define OZZ_LIKELY(x) __builtin_expect(!!(x), 1)
#define OZZ_UNLIKELY(x) __builtin_expect(!!(x), 0)

namespace ozz {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using uptr = std::uintptr_t;

}  // namespace ozz

#endif  // OZZ_SRC_BASE_COMPILER_H_
