// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the reproduction (input generation, mutation,
// hint shuffling) draws from an explicitly seeded Rng so that any reported bug
// is replayable from (seed, input) alone. This mirrors the paper's claim that
// OEMU makes out-of-order behaviour "systematically controllable" (§1).
#ifndef OZZ_SRC_BASE_RNG_H_
#define OZZ_SRC_BASE_RNG_H_

#include <cstddef>
#include <cstdint>

#include "src/base/compiler.h"

namespace ozz::base {

// xoshiro256** by Blackman & Vigna; small, fast, and good enough for fuzzing.
class Rng {
 public:
  explicit Rng(u64 seed) {
    // splitmix64 seeding so nearby seeds give unrelated streams.
    u64 x = seed + 0x9e3779b97f4a7c15ull;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  u64 Next() {
    const u64 result = Rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). bound == 0 returns 0.
  u64 Below(u64 bound) { return bound == 0 ? 0 : Next() % bound; }

  // Uniform value in [lo, hi] inclusive.
  u64 InRange(u64 lo, u64 hi) { return lo + Below(hi - lo + 1); }

  // True with probability num/den.
  bool OneIn(u64 den) { return Below(den) == 0; }

  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void Shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  template <typename Container>
  auto& Pick(Container& c) {
    return c[static_cast<std::size_t>(Below(c.size()))];
  }

 private:
  static u64 Rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  u64 state_[4];
};

}  // namespace ozz::base

#endif  // OZZ_SRC_BASE_RNG_H_
