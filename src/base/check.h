// Internal invariant checking (host-side, not the simulated kernel's oracles).
//
// OZZ_CHECK aborts the process: it guards invariants of the reproduction
// infrastructure itself. Bugs *in the simulated kernel* are reported through
// osk::Oops instead, which unwinds only the simulated machine.
#ifndef OZZ_SRC_BASE_CHECK_H_
#define OZZ_SRC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define OZZ_CHECK(cond)                                                                 \
  do {                                                                                  \
    if (!(cond)) {                                                                      \
      std::fprintf(stderr, "OZZ_CHECK failed: %s at %s:%d\n", #cond, __FILE__, __LINE__); \
      std::abort();                                                                     \
    }                                                                                   \
  } while (0)

#define OZZ_CHECK_MSG(cond, msg)                                                          \
  do {                                                                                    \
    if (!(cond)) {                                                                        \
      std::fprintf(stderr, "OZZ_CHECK failed: %s (%s) at %s:%d\n", #cond, msg, __FILE__,  \
                   __LINE__);                                                             \
      std::abort();                                                                      \
    }                                                                                     \
  } while (0)

#endif  // OZZ_SRC_BASE_CHECK_H_
