#include "src/oemu/instr.h"

#include <deque>
#include <mutex>
#include <sstream>

#include "src/base/check.h"

namespace ozz::oemu {
namespace {

struct RegistryState {
  std::mutex mu;
  std::deque<InstrInfo> infos;  // index = id - 1 (id 0 is invalid)
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();  // leaked intentionally
  return *state;
}

}  // namespace

InstrId InstrRegistry::Register(InstrKind kind, std::string_view expr, std::source_location loc) {
  RegistryState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  InstrInfo info;
  info.id = static_cast<InstrId>(s.infos.size() + 1);
  info.kind = kind;
  info.expr = std::string(expr);
  info.file = loc.file_name();
  info.function = loc.function_name();
  info.line = loc.line();
  s.infos.push_back(std::move(info));
  return s.infos.back().id;
}

const InstrInfo& InstrRegistry::Info(InstrId id) {
  RegistryState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  OZZ_CHECK(id != kInvalidInstr && id <= s.infos.size());
  return s.infos[id - 1];
}

std::string InstrRegistry::Describe(InstrId id) {
  if (id == kInvalidInstr) {
    return "<no-instr>";
  }
  if (id > Count()) {
    // Unregistered (e.g. synthetic ids in hand-crafted test traces).
    std::ostringstream os;
    os << "<instr " << id << ">";
    return os.str();
  }
  const InstrInfo& info = Info(id);
  const std::string& f = info.file;
  std::size_t slash = f.find_last_of('/');
  std::ostringstream os;
  os << (slash == std::string::npos ? f : f.substr(slash + 1)) << ":" << info.line << " ("
     << info.expr << ")";
  return os.str();
}

std::size_t InstrRegistry::Count() {
  RegistryState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.infos.size();
}

}  // namespace ozz::oemu
