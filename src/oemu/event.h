// Profile event types (§4.2).
//
// While running single-threaded inputs, OZZ records every memory access as a
// five-tuple (instruction, accessed location, size, type, timestamp) and every
// barrier as a three-tuple (instruction, barrier type, timestamp). These
// events feed the scheduling-hint calculation (Algorithm 1) and are also the
// trace the LKMM checker validates in property tests.
#ifndef OZZ_SRC_OEMU_EVENT_H_
#define OZZ_SRC_OEMU_EVENT_H_

#include <vector>

#include "src/base/ids.h"

namespace ozz::oemu {

enum class AccessType : u8 { kLoad, kStore };

// Barrier classes of Table 1. kImplied* are barrier effects OEMU derives from
// annotated accesses (e.g. READ_ONCE acts as a load barrier for the
// versioning window, §10.1 Case 6).
struct BarrierClass {
  bool orders_stores = false;  // prevents store-* reordering across it
  bool orders_loads = false;   // prevents load-load reordering across it
};

enum class BarrierType : u8 {
  kFull,          // smp_mb()
  kLoadBarrier,   // smp_rmb()
  kStoreBarrier,  // smp_wmb()
  kAcquire,       // smp_load_acquire() (implied, after the load)
  kRelease,       // smp_store_release() (implied, before the store)
  kImpliedLoad,   // READ_ONCE()/atomic load — Alpha addr-dependency rule
  kRmwFull,       // value-returning RMW: full barrier both sides
};

// The LKMM barrier-class table. This is the *reference* encoding of Table 1;
// runtime/analysis code must not consult it directly — the per-model effect
// comes from MemoryModel::EffectOf (src/oemu/memory_model.h), which equals
// this table for lkmm and weakens rows for tso/pso/armv8x. Direct calls
// outside the model layer re-hardcode LKMM and are flagged by the ozz_lint
// model-discipline rule.
constexpr BarrierClass ClassOf(BarrierType t) {
  switch (t) {
    case BarrierType::kFull:
    case BarrierType::kRmwFull:
      return {true, true};
    case BarrierType::kLoadBarrier:
    case BarrierType::kAcquire:
    case BarrierType::kImpliedLoad:
      return {false, true};
    case BarrierType::kStoreBarrier:
    case BarrierType::kRelease:
      return {true, false};
  }
  return {false, false};
}

const char* BarrierTypeName(BarrierType t);

// Syntactic dependency kinds (LKMM's addr/data/ctrl relations). A dependency
// links a value-carrying load to a po-later access that consumes its value:
// as an address (kAddr), as a stored value (kData), or as a branch condition
// the access is control-dependent on (kCtrl). Which kinds actually order
// which access classes under which backend is MemoryModel::DepOrdersLoad /
// DepOrdersStore — the kinds themselves are model-independent.
enum class DepKind : u8 { kAddr, kData, kCtrl };

const char* DepKindName(DepKind k);

struct Event {
  // kAccess: an instruction executed (program order).
  // kBarrier: a barrier executed (explicit or implied by an annotation).
  // kCommit: a store became globally visible (for delayed stores this is
  //          later than its kAccess event; the LKMM checker pairs them).
  // kLock:   a lockdep-tracked lock was acquired or released; feeds the
  //          static lockset analysis (src/analysis). Lock events carry no
  //          memory semantics of their own — the ordering comes from the
  //          acquire/release RMWs the lock implementation performs.
  enum class Kind : u8 { kAccess, kBarrier, kCommit, kLock } kind = Kind::kAccess;

  // Common.
  InstrId instr = kInvalidInstr;
  u64 timestamp = 0;

  // Access fields.
  AccessType access = AccessType::kLoad;
  uptr addr = 0;
  u32 size = 0;
  u32 occurrence = 0;  // 1-based dynamic count of `instr` within the recording
  u64 value = 0;       // value loaded / stored (diagnostics and LKMM checking)
  bool annotated = false;  // READ_ONCE/WRITE_ONCE/atomic/acquire/release
  bool delayed = false;    // store executed into the virtual store buffer
  bool versioned = false;  // load served from the store history
  u64 window = 0;          // loads: the versioning-window start at execution

  // Syntactic dependency carried into this access: the po-earlier load whose
  // value feeds this access's address/value/condition. kInvalidInstr when
  // the access carries no dependency (the common case). dep_marked records
  // whether the *source* load was annotated (READ_ONCE-class) — LKMM only
  // guarantees dependency ordering from marked loads, while armv8x hardware
  // honors any head (MemoryModel::DepOrdersLoad/DepOrdersStore decide).
  InstrId dep_instr = kInvalidInstr;
  u32 dep_occurrence = 0;  // occurrence of dep_instr the value came from
  DepKind dep_kind = DepKind::kAddr;
  bool dep_marked = false;

  bool HasDep() const { return dep_instr != kInvalidInstr; }

  // Barrier fields.
  BarrierType barrier = BarrierType::kFull;

  // Lock fields. Lockdep registers one class per lock instance in this
  // reproduction, so the class id identifies the lock object.
  u32 lock_cls = 0;
  bool lock_acquire = false;

  bool IsAccess() const { return kind == Kind::kAccess; }
  bool IsBarrier() const { return kind == Kind::kBarrier; }
  bool IsCommit() const { return kind == Kind::kCommit; }
  bool IsLock() const { return kind == Kind::kLock; }
  bool IsStore() const { return IsAccess() && access == AccessType::kStore; }
  bool IsLoad() const { return IsAccess() && access == AccessType::kLoad; }
};

using Trace = std::vector<Event>;

}  // namespace ozz::oemu

#endif  // OZZ_SRC_OEMU_EVENT_H_
