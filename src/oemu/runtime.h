// OEMU runtime: in-vivo out-of-order execution emulation (§3).
//
// The runtime is "transplanted into the kernel": every shared-memory access
// of the simulated kernel reaches it through the OSK_* instrumentation macros
// (the reproduction's stand-in for the paper's LLVM pass, Fig. 2). It
// implements
//   * delayed store operations via a per-thread virtual store buffer (§3.1),
//   * versioned load operations via the global store history and a per-thread
//     versioning window (§3.2),
//   * barrier semantics of Table 1, including the implied-barrier treatment
//     of READ_ONCE/atomics required by LKMM Case 6 (§10.1), and
//   * the userspace control interfaces delay_store_at / read_old_value_at
//     (Table 2).
//
// Reordering discipline (§3.3/§10.1), as instantiated by the default lkmm
// memory model — RuntimeOptions::model selects a different backend (tso,
// pso, armv8x) whose tables weaken or keep each rule; the invariants marked
// "every architecture" below hold under every model:
//   - Loads are never delayed, so a prior load always executes before a later
//     store commits (Case 7: no load-store reordering).
//   - Stores commit no later than the next store/full/release barrier or
//     interrupt (Cases 1, 2, 5).
//   - Versioned loads may only read values as of the window start t_rmb,
//     which load/full/acquire barriers and annotated loads advance
//     (Cases 1, 3, 4, 6).
//   - Same-location stores never bypass each other (coherence): a store that
//     overlaps a buffered delayed store is buffered behind it.
//   - Per-location read coherence: a versioned load never reads a value older
//     than what the same thread previously loaded from or committed to that
//     location (cache coherence holds on every architecture, so CoRR/CoWR
//     inversions must never be emulated).
//   - Release stores are never delayed; this forgoes one legal reordering
//     (a later store overtaking a release store) but never emulates an
//     illegal one.
//
// Concurrency contract: the runtime has no internal locking. It must be
// driven either by the token-serialized simulated threads of one rt::Machine
// or by a single host thread (unit tests); both give mutual exclusion by
// construction.
#ifndef OZZ_SRC_OEMU_RUNTIME_H_
#define OZZ_SRC_OEMU_RUNTIME_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/ids.h"
#include "src/oemu/event.h"
#include "src/oemu/memory_model.h"
#include "src/oemu/store_buffer.h"
#include "src/oemu/store_history.h"
#include "src/rt/machine.h"

namespace ozz::oemu {

struct RuntimeOptions {
  // Honor DelayStoreAt/ReadOldValueAt specs. When false the runtime
  // performs strictly in-order execution (the store buffer commits
  // immediately), modelling a conventional concurrency fuzzer.
  bool reordering_enabled = true;
  // Memory model governing which reorderings are emulated and what each
  // barrier/RMW strength flushes or advances. nullptr resolves to
  // MemoryModel::Lkmm() — deliberately NOT MemoryModel::Default(): library
  // behavior must never depend on the environment, only tools read
  // $OZZ_DEFAULT_MODEL.
  const MemoryModel* model = nullptr;
};

// A syntactic dependency annotation on an access: the value of the load at
// `src` feeds this access's address (kAddr), stored value (kData), or the
// branch condition it is control-dependent on (kCtrl). Call sites obtain
// `src` from a DepToken captured at the source load (src/oemu/cell.h); an
// invalid src means "no dependency" and is the default everywhere, so
// existing call sites are unaffected.
struct Dep {
  InstrId src = kInvalidInstr;
  DepKind kind = DepKind::kAddr;
};

class Runtime {
 public:
  using Options = RuntimeOptions;

  struct Stats {
    u64 loads = 0;
    u64 stores = 0;
    u64 delayed_stores = 0;     // stores parked in the virtual store buffer
    u64 versioned_load_hits = 0;  // loads that observably read an old value
    u64 commits = 0;
    u64 barriers = 0;
    // Control-interface accounting (hint-lifecycle triage): accesses that
    // matched an installed delay-store / read-old spec. A read-old match
    // splits into stale (history rewound to an older value) and fresh (spec
    // matched but nothing older was available).
    u64 spec_delayed_stores = 0;
    u64 spec_stale_loads = 0;
    u64 spec_fresh_loads = 0;
    // Loads whose versioning rewind was clamped by an honored dependency:
    // the model forbids the dependent load binding before its source, so the
    // as-of point was raised to the source load's effective time.
    u64 dep_floored_loads = 0;
  };

  enum class CheckPhase : u8 {
    kExecute,  // the instruction ran (in program order)
    kCommit,   // a delayed store left the buffer and became globally visible
  };
  using AccessCheck =
      std::function<void(uptr addr, u32 size, AccessType type, InstrId instr, CheckPhase phase)>;

  explicit Runtime(Options opts = Options());
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Exactly one runtime may be active at a time; the instrumentation macros
  // route through it. `machine` may be null for machine-less unit tests.
  void Activate(rt::Machine* machine);
  void Deactivate();
  static Runtime* Active();

  // ---- Control interfaces (Table 2) ----
  // occurrence == 0 targets every dynamic execution of the instruction;
  // otherwise only the given 1-based occurrence (counted from the last
  // OnSyscallEnter on that thread).
  void DelayStoreAt(ThreadId thread, InstrId instr, u32 occurrence = 0);
  void ReadOldValueAt(ThreadId thread, InstrId instr, u32 occurrence = 0);
  void ClearControls(ThreadId thread);

  // ---- Syscall lifecycle (called by executors) ----
  void OnSyscallEnter(ThreadId thread);  // resets dynamic occurrence counters
  void OnSyscallExit(ThreadId thread);   // commits all delayed stores

  // ---- Profiling (§4.2) ----
  void StartRecording(ThreadId thread);
  Trace StopRecording(ThreadId thread);

  // Appends a kLock event to `thread`'s recording (no-op when the thread is
  // not recording). Called by lockdep so profiled traces expose critical
  // sections to the static lockset analysis (src/analysis).
  void RecordLock(ThreadId thread, u32 lock_cls, bool acquire);

  // ---- Access callbacks ----
  // `dep` (when src is valid) names the po-earlier load whose value feeds
  // this access. For loads under a model honoring the dependency it floors
  // the versioning rewind; for stores it is trace metadata only (the runtime
  // mechanically cannot commit a store before a po-earlier load executed, so
  // load-store dependency ordering is enforced by construction — only the
  // axiomatic engine needs the edge).
  u64 Load(InstrId instr, uptr addr, u32 size, bool annotated, Dep dep = {});
  void Store(InstrId instr, uptr addr, u32 size, u64 value, bool annotated, Dep dep = {});
  u64 LoadAcquire(InstrId instr, uptr addr, u32 size);
  void StoreRelease(InstrId instr, uptr addr, u32 size, u64 value);
  // Atomic read-modify-write; returns the old value. `fn` maps old -> new.
  u64 Rmw(InstrId instr, uptr addr, u32 size, RmwOrder order, u64 (*fn)(u64, u64), u64 operand);
  void Barrier(InstrId instr, BarrierType type);

  // Bug-detecting oracle hook (KASAN / null-deref). May throw to unwind the
  // simulated thread; the runtime keeps its own state consistent.
  void SetAccessCheck(AccessCheck check) { access_check_ = std::move(check); }

  // Commits all delayed stores of `thread` (interrupt semantics, §3.1).
  void FlushThread(ThreadId thread);

  // FlushThread plus the interrupt-commit trace event; Activate wires this
  // as the machine's interrupt hook so traces distinguish interrupt-driven
  // commits from barrier flushes.
  void OnInterrupt(ThreadId thread);

  // Full-fence semantics without an instrumented call site: commits the
  // thread's delayed stores, closes its versioning window, and records a
  // full-barrier event in the trace. Used for operations with internal
  // locking (e.g. the allocator) so hint calculation sees the boundary.
  void Fence(ThreadId thread);

  // Drops a thread's buffered stores without committing (crash teardown).
  void AbandonThread(ThreadId thread);

  // ---- Introspection ----
  u64 now() const { return clock_; }
  u64 window_start(ThreadId thread) const;
  const StoreBuffer& buffer(ThreadId thread) const;
  const StoreHistory& history() const { return history_; }
  const Stats& stats() const { return stats_; }
  bool reordering_enabled() const { return opts_.reordering_enabled; }
  const MemoryModel& model() const { return *model_; }

  // Thread id the calling context maps to (sim thread id, or the host
  // pseudo-thread when called outside a machine).
  static ThreadId CurrentThreadId();

  // Test-only: makes the calling host thread act as `id` (so unit tests can
  // model "another core" writing memory without spinning up a machine).
  // Pass kAnyThread to clear. No effect on real simulated threads.
  static void OverrideThreadForTesting(ThreadId id);

  // ---- Selective instrumentation (§6.3.1 discussion) ----
  // The paper suggests enabling OEMU only for submodules that rely on
  // lockless code to recover most of the runtime overhead. This restricts
  // full emulation to call sites whose source file basename is in `files`
  // (e.g. {"tls.cc", "watch_queue.cc"}); accesses from other sites take a
  // raw fast path (no buffering, history, checks, or recording). Pass an
  // empty set to instrument everything again. Decisions are cached per
  // instruction.
  void RestrictInstrumentationToFiles(std::set<std::string> files);
  bool InstrumentationEnabledFor(InstrId instr);

 private:
  // Spec: instr -> targeted occurrences; empty set = every occurrence.
  using Spec = std::unordered_map<InstrId, std::set<u32>>;

  // The last execution of a value-carrying load, as seen by po-later accesses
  // that name it as a dependency source: the effective time its value was
  // current at (== its rewound as-of point when versioned, the global clock
  // otherwise), the dynamic occurrence, and whether the load was annotated
  // (LKMM honors only marked heads).
  struct DepVal {
    u64 effective = 0;
    u32 occurrence = 0;
    bool marked = false;
  };

  // A Dep resolved against the executing thread: invalid instr = no dep (the
  // source never executed this syscall, or none was named).
  struct ResolvedDep {
    InstrId instr = kInvalidInstr;
    u32 occurrence = 0;
    DepKind kind = DepKind::kAddr;
    bool marked = false;
    u64 effective = 0;  // source load's effective time (the rewind floor)
  };

  struct ThreadCtx {
    StoreBuffer buffer;
    u64 window_start = 0;  // t_rmb of the versioning window (t_rmb, t_cur]
    Spec delay_store;
    Spec read_old;
    std::unordered_map<InstrId, u32> occurrences;
    // Dependency-source table: per load instruction, its latest DepVal.
    // Reset with the occurrence counters at syscall entry.
    std::unordered_map<InstrId, DepVal> dep_vals;
    bool recording = false;
    Trace trace;
    // Per-location coherence floor: the youngest timestamp this thread has
    // observed (via load) or produced (via commit) per location; versioned
    // loads never rewind past it. Keyed by start address (accesses in the
    // simulated kernel are aligned cells).
    std::unordered_map<uptr, u64> loc_floor;
  };

  static bool SpecMatches(const Spec& spec, InstrId instr, u32 occurrence);

  ThreadCtx& Ctx(ThreadId thread);
  const ThreadCtx* FindCtx(ThreadId thread) const;

  // Wraps an access with scheduler notification; returns the dynamic
  // occurrence index.
  u32 EnterAccess(ThreadCtx& ctx, InstrId instr);
  void NotifyScheduler(InstrId instr, rt::SwitchWhen phase);

  void RunCheck(uptr addr, u32 size, AccessType type, InstrId instr, CheckPhase phase);
  void CommitStore(ThreadId thread, const BufferedStore& s);
  void FlushLocked(ThreadId thread, ThreadCtx& ctx);
  void AdvanceWindow(ThreadCtx& ctx) { ctx.window_start = clock_; }

  void RecordAccess(ThreadCtx& ctx, InstrId instr, AccessType type, uptr addr, u32 size,
                    u64 value, u32 occurrence, bool annotated, bool delayed, bool versioned,
                    const ResolvedDep& dep);
  void RecordBarrier(ThreadCtx& ctx, InstrId instr, BarrierType type);

  static ResolvedDep ResolveDep(ThreadCtx& ctx, Dep dep);

  // Byte-assembly of a load result honoring buffer > history > memory.
  // `dep` floors the versioning rewind when the model honors it;
  // `effective_out` receives the time the returned value was current at.
  u64 ReadValue(ThreadCtx& ctx, InstrId instr, uptr addr, u32 size, u32 occurrence,
                const ResolvedDep& dep, bool* versioned_out, u64* effective_out = nullptr);

  Options opts_;
  const MemoryModel* model_ = nullptr;  // never null after construction
  rt::Machine* machine_ = nullptr;
  StoreHistory history_;
  u64 clock_ = 1;
  std::map<ThreadId, ThreadCtx> ctxs_;
  AccessCheck access_check_;
  Stats stats_;
  // Selective instrumentation: empty = everything instrumented; otherwise a
  // per-InstrId decision cache over the allowed source files.
  std::set<std::string> instrumented_files_;
  std::vector<u8> instr_enabled_;  // 0 = unknown, 1 = enabled, 2 = disabled
};

}  // namespace ozz::oemu

#endif  // OZZ_SRC_OEMU_RUNTIME_H_
