// Instruction registry.
//
// The paper's OEMU compiler pass replaces every memory access with a callback
// carrying the *address of the instruction* (Table 2). This reproduction uses
// an explicit instrumentation macro instead of an LLVM pass; each call site
// registers itself once (lazily, on first execution) and obtains a stable
// InstrId plus source metadata used in bug reports.
#ifndef OZZ_SRC_OEMU_INSTR_H_
#define OZZ_SRC_OEMU_INSTR_H_

#include <source_location>
#include <string>
#include <string_view>

#include "src/base/ids.h"

namespace ozz::oemu {

enum class InstrKind : u8 {
  kStore,         // plain store
  kLoad,          // plain load
  kWriteOnce,     // WRITE_ONCE() — relaxed store
  kReadOnce,      // READ_ONCE() — relaxed load (heads address dependencies)
  kStoreRelease,  // smp_store_release()
  kLoadAcquire,   // smp_load_acquire()
  kRmw,           // atomic read-modify-write (bitops, atomic_t)
  kBarrier,       // standalone memory barrier (smp_mb/rmb/wmb)
};

struct InstrInfo {
  InstrId id = kInvalidInstr;
  InstrKind kind = InstrKind::kLoad;
  std::string expr;  // source expression, e.g. "pipe->head"
  std::string file;
  std::string function;
  u32 line = 0;
};

class InstrRegistry {
 public:
  // Registers a call site; thread-safe, returns a process-stable id.
  static InstrId Register(InstrKind kind, std::string_view expr, std::source_location loc);

  // Looks up metadata for an id; aborts on unknown ids.
  static const InstrInfo& Info(InstrId id);

  // Human-readable "file:line (expr)" string for reports.
  static std::string Describe(InstrId id);

  static std::size_t Count();
};

namespace detail {

// Per-call-site id memoization. The lambda in the macro below has a unique
// closure type per expansion, so its static local is per call site.
#define OZZ_OEMU_SITE(kind, what)                                                    \
  ([](std::source_location oemu_loc) -> ::ozz::InstrId {                             \
    static const ::ozz::InstrId oemu_site_id =                                       \
        ::ozz::oemu::InstrRegistry::Register((kind), (what), oemu_loc);               \
    return oemu_site_id;                                                             \
  }(std::source_location::current()))

}  // namespace detail
}  // namespace ozz::oemu

#endif  // OZZ_SRC_OEMU_INSTR_H_
