#include "src/oemu/runtime.h"

#include <cstring>

#include "src/base/check.h"
#include "src/base/log.h"
#include "src/obs/metrics.h"
#include "src/obs/prof.h"
#include "src/obs/trace.h"
#include "src/oemu/instr.h"

namespace ozz::oemu {
namespace {

Runtime* g_active = nullptr;

// Pseudo thread id for host-thread accesses (kernel construction, unit
// tests that drive the runtime without an rt::Machine).
constexpr ThreadId kHostThread = -2;

thread_local ThreadId tls_thread_override = kAnyThread;

u64 BytesToValue(const u8* bytes, u32 size) {
  u64 v = 0;
  for (u32 i = 0; i < size; ++i) {
    v |= static_cast<u64>(bytes[i]) << (8 * i);
  }
  return v;
}

void ValueToBytes(u64 value, u32 size, u8* bytes) {
  for (u32 i = 0; i < size; ++i) {
    bytes[i] = static_cast<u8>(value >> (8 * i));
  }
}

}  // namespace

const char* BarrierTypeName(BarrierType t) {
  switch (t) {
    case BarrierType::kFull:
      return "smp_mb";
    case BarrierType::kLoadBarrier:
      return "smp_rmb";
    case BarrierType::kStoreBarrier:
      return "smp_wmb";
    case BarrierType::kAcquire:
      return "smp_load_acquire";
    case BarrierType::kRelease:
      return "smp_store_release";
    case BarrierType::kImpliedLoad:
      return "READ_ONCE";
    case BarrierType::kRmwFull:
      return "atomic-rmw";
  }
  return "?";
}

const char* DepKindName(DepKind k) {
  switch (k) {
    case DepKind::kAddr:
      return "addr";
    case DepKind::kData:
      return "data";
    case DepKind::kCtrl:
      return "ctrl";
  }
  return "?";
}

Runtime::Runtime(Options opts) : opts_(opts), model_(&MemoryModel::Resolve(opts.model)) {}

Runtime::~Runtime() {
  if (g_active == this) {
    Deactivate();
  }
}

void Runtime::Activate(rt::Machine* machine) {
  OZZ_CHECK_MSG(g_active == nullptr, "another OEMU runtime is already active");
  g_active = this;
  machine_ = machine;
  if (machine_ != nullptr) {
    // The store buffer commits on interrupts (§3.1).
    machine_->SetInterruptHook([this](ThreadId t) { OnInterrupt(t); });
  }
}

void Runtime::Deactivate() {
  if (g_active == this) {
    g_active = nullptr;
  }
  machine_ = nullptr;
}

Runtime* Runtime::Active() { return g_active; }

ThreadId Runtime::CurrentThreadId() {
  rt::SimThread* t = rt::Machine::CurrentThread();
  if (t != nullptr) {
    return t->id();
  }
  return tls_thread_override != kAnyThread ? tls_thread_override : kHostThread;
}

void Runtime::OverrideThreadForTesting(ThreadId id) { tls_thread_override = id; }

void Runtime::RestrictInstrumentationToFiles(std::set<std::string> files) {
  instrumented_files_ = std::move(files);
  instr_enabled_.clear();
}

bool Runtime::InstrumentationEnabledFor(InstrId instr) {
  if (instrumented_files_.empty()) {
    return true;
  }
  if (instr >= instr_enabled_.size()) {
    instr_enabled_.resize(instr + 1, 0);
  }
  u8& cached = instr_enabled_[instr];
  if (cached == 0) {
    const InstrInfo& info = InstrRegistry::Info(instr);
    std::size_t slash = info.file.find_last_of('/');
    std::string base = slash == std::string::npos ? info.file : info.file.substr(slash + 1);
    cached = instrumented_files_.count(base) > 0 ? 1 : 2;
  }
  return cached == 1;
}

bool Runtime::SpecMatches(const Spec& spec, InstrId instr, u32 occurrence) {
  auto it = spec.find(instr);
  if (it == spec.end()) {
    return false;
  }
  return it->second.empty() || it->second.count(occurrence) > 0;
}

Runtime::ThreadCtx& Runtime::Ctx(ThreadId thread) { return ctxs_[thread]; }

const Runtime::ThreadCtx* Runtime::FindCtx(ThreadId thread) const {
  auto it = ctxs_.find(thread);
  return it == ctxs_.end() ? nullptr : &it->second;
}

void Runtime::DelayStoreAt(ThreadId thread, InstrId instr, u32 occurrence) {
  Spec& spec = Ctx(thread).delay_store;
  if (occurrence == 0) {
    spec[instr].clear();
  } else {
    spec[instr].insert(occurrence);
  }
}

void Runtime::ReadOldValueAt(ThreadId thread, InstrId instr, u32 occurrence) {
  Spec& spec = Ctx(thread).read_old;
  if (occurrence == 0) {
    spec[instr].clear();
  } else {
    spec[instr].insert(occurrence);
  }
}

void Runtime::ClearControls(ThreadId thread) {
  ThreadCtx& ctx = Ctx(thread);
  ctx.delay_store.clear();
  ctx.read_old.clear();
}

void Runtime::OnSyscallEnter(ThreadId thread) {
  ThreadCtx& ctx = Ctx(thread);
  ctx.occurrences.clear();
  ctx.dep_vals.clear();
  OZZ_TRACE_EMIT(obs::EvType::kSyscallEnter, thread, clock_, kInvalidInstr, 0, 0);
}

void Runtime::OnSyscallExit(ThreadId thread) {
  u64 pending = 0;
  if (OZZ_TRACE_ACTIVE()) {
    auto it = ctxs_.find(thread);
    pending = it == ctxs_.end() ? 0 : it->second.buffer.size();
  }
  FlushThread(thread);
  OZZ_TRACE_EMIT(obs::EvType::kSyscallExit, thread, clock_, kInvalidInstr, pending, 0);
}

void Runtime::StartRecording(ThreadId thread) {
  ThreadCtx& ctx = Ctx(thread);
  ctx.recording = true;
  ctx.trace.clear();
}

void Runtime::RecordLock(ThreadId thread, u32 lock_cls, bool acquire) {
  ThreadCtx& ctx = Ctx(thread);
  if (!ctx.recording) {
    return;
  }
  Event e;
  e.kind = Event::Kind::kLock;
  e.timestamp = clock_;
  e.lock_cls = lock_cls;
  e.lock_acquire = acquire;
  ctx.trace.push_back(e);
}

Trace Runtime::StopRecording(ThreadId thread) {
  ThreadCtx& ctx = Ctx(thread);
  ctx.recording = false;
  Trace out = std::move(ctx.trace);
  ctx.trace.clear();
  return out;
}

u32 Runtime::EnterAccess(ThreadCtx& ctx, InstrId instr) { return ++ctx.occurrences[instr]; }

void Runtime::NotifyScheduler(InstrId instr, rt::SwitchWhen phase) {
  if (machine_ != nullptr && rt::Machine::CurrentThread() != nullptr) {
    machine_->OnInstr(instr, phase);
  }
}

void Runtime::RunCheck(uptr addr, u32 size, AccessType type, InstrId instr, CheckPhase phase) {
  if (access_check_) {
    // Oracle time nests inside the enclosing site/execute scopes, so the
    // access checks are not billed to the emulator itself.
    obs::PhaseTimer oracle_timer(obs::Phase::kOracle);
    access_check_(addr, size, type, instr, phase);
  }
}

void Runtime::CommitStore(ThreadId thread, const BufferedStore& s) {
  u8 old_bytes[8];
  std::memcpy(old_bytes, reinterpret_cast<const void*>(s.addr), s.size);
  u8 new_bytes[8];
  ValueToBytes(s.value, s.size, new_bytes);
  std::memcpy(reinterpret_cast<void*>(s.addr), new_bytes, s.size);

  HistoryEntry e;
  e.addr = s.addr;
  e.size = s.size;
  e.old_value = BytesToValue(old_bytes, s.size);
  e.new_value = s.value;
  e.timestamp = ++clock_;
  e.thread = thread;
  e.instr = s.instr;
  history_.Append(e);
  ++stats_.commits;

  if (s.delayed_at != 0) {
    // Residency of the delayed store in the virtual buffer, in logical-clock
    // ticks and (when tracing) in scheduler segments — the paper's measure of
    // how long a reordering window actually stayed open.
    obs::Metrics::Global()
        .GetHistogram("oemu.sb_residency_ticks", obs::TickBuckets())
        .Record(e.timestamp - s.delayed_at);
    if (OZZ_TRACE_ACTIVE()) {
      obs::Metrics::Global()
          .GetHistogram("oemu.sb_residency_segments", obs::SmallBuckets())
          .Record(::ozz::obs::TraceRecorder::Active()->segment() - s.delay_seg);
    }
  }
  OZZ_TRACE_EMIT(obs::EvType::kStoreCommit, thread, e.timestamp, s.instr, s.addr,
                 s.delayed_at != 0 ? 1 : 0);

  ThreadCtx& ctx = Ctx(thread);
  // The committing thread may never read anything older than its own store.
  u64& floor = ctx.loc_floor[s.addr];
  if (e.timestamp > floor) {
    floor = e.timestamp;
  }
  if (ctx.recording) {
    Event ev;
    ev.kind = Event::Kind::kCommit;
    ev.instr = s.instr;
    ev.timestamp = e.timestamp;
    ev.access = AccessType::kStore;
    ev.addr = s.addr;
    ev.size = s.size;
    ev.occurrence = s.occurrence;
    ev.value = s.value;
    ctx.trace.push_back(ev);
  }

  // Commit-time oracle: a delayed store that lands after the target object
  // was freed (by a concurrently running thread) is the OOO-induced
  // use-after-free the in-vitro approaches miss (§3, "Benefits of in-vivo
  // emulation").
  RunCheck(s.addr, s.size, AccessType::kStore, s.instr, CheckPhase::kCommit);
}

void Runtime::FlushLocked(ThreadId thread, ThreadCtx& ctx) {
  ctx.buffer.Drain([this, thread](const BufferedStore& s) { CommitStore(thread, s); });
}

void Runtime::FlushThread(ThreadId thread) {
  auto it = ctxs_.find(thread);
  if (it != ctxs_.end()) {
    FlushLocked(thread, it->second);
  }
}

void Runtime::OnInterrupt(ThreadId thread) {
  if (OZZ_TRACE_ACTIVE()) {
    auto it = ctxs_.find(thread);
    u64 pending = it == ctxs_.end() ? 0 : it->second.buffer.size();
    OZZ_TRACE_EMIT(obs::EvType::kInterruptCommit, thread, clock_, kInvalidInstr, pending, 0);
  }
  FlushThread(thread);
}

void Runtime::Fence(ThreadId thread) {
  ThreadCtx& ctx = Ctx(thread);
  u64 pending = ctx.buffer.size();
  FlushLocked(thread, ctx);
  AdvanceWindow(ctx);
  ++stats_.barriers;
  RecordBarrier(ctx, kInvalidInstr, BarrierType::kFull);
  OZZ_TRACE_EMIT(obs::EvType::kBarrierFlush, thread, clock_, kInvalidInstr, pending,
                 static_cast<u64>(BarrierType::kFull));
}

void Runtime::AbandonThread(ThreadId thread) {
  auto it = ctxs_.find(thread);
  if (it != ctxs_.end()) {
    it->second.buffer.Clear();
  }
}

u64 Runtime::window_start(ThreadId thread) const {
  const ThreadCtx* ctx = FindCtx(thread);
  return ctx == nullptr ? 0 : ctx->window_start;
}

const StoreBuffer& Runtime::buffer(ThreadId thread) const {
  static const StoreBuffer kEmpty;
  const ThreadCtx* ctx = FindCtx(thread);
  return ctx == nullptr ? kEmpty : ctx->buffer;
}

void Runtime::RecordAccess(ThreadCtx& ctx, InstrId instr, AccessType type, uptr addr, u32 size,
                           u64 value, u32 occurrence, bool annotated, bool delayed,
                           bool versioned, const ResolvedDep& dep) {
  if (!ctx.recording) {
    return;
  }
  Event e;
  e.kind = Event::Kind::kAccess;
  e.instr = instr;
  e.timestamp = clock_;
  e.access = type;
  e.addr = addr;
  e.size = size;
  e.occurrence = occurrence;
  e.value = value;
  e.annotated = annotated;
  e.delayed = delayed;
  e.versioned = versioned;
  e.window = ctx.window_start;
  e.dep_instr = dep.instr;
  e.dep_occurrence = dep.occurrence;
  e.dep_kind = dep.kind;
  e.dep_marked = dep.marked;
  ctx.trace.push_back(e);
}

Runtime::ResolvedDep Runtime::ResolveDep(ThreadCtx& ctx, Dep dep) {
  if (dep.src == kInvalidInstr) {
    return {};
  }
  auto it = ctx.dep_vals.find(dep.src);
  if (it == ctx.dep_vals.end()) {
    // The named source never executed in this syscall (e.g. a token from a
    // branch not taken): no dependency to honor.
    return {};
  }
  ResolvedDep r;
  r.instr = dep.src;
  r.occurrence = it->second.occurrence;
  r.kind = dep.kind;
  r.marked = it->second.marked;
  r.effective = it->second.effective;
  return r;
}

void Runtime::RecordBarrier(ThreadCtx& ctx, InstrId instr, BarrierType type) {
  if (!ctx.recording) {
    return;
  }
  Event e;
  e.kind = Event::Kind::kBarrier;
  e.instr = instr;
  e.timestamp = clock_;
  e.barrier = type;
  ctx.trace.push_back(e);
}

u64 Runtime::ReadValue(ThreadCtx& ctx, InstrId instr, uptr addr, u32 size, u32 occurrence,
                       const ResolvedDep& dep, bool* versioned_out, u64* effective_out) {
  u8 bytes[8];
  std::memcpy(bytes, reinterpret_cast<const void*>(addr), size);
  bool versioned = false;
  // Hierarchical search (§3.1 "Forwarding values to subsequent loads" and
  // §3.2 "Store history"): own store buffer > store history > memory.
  // Byte-granular: rewind non-buffered bytes first, then overlay buffered
  // bytes so in-flight own stores always win.
  u64 effective_time = clock_;
  const bool spec_matched = opts_.reordering_enabled && model_->LoadsVersionable() &&
                            SpecMatches(ctx.read_old, instr, occurrence);
  if (spec_matched) {
    // Coherence floor: never rewind past a value this thread already saw or
    // produced at this location (CoRR/CoWR must hold).
    u64 as_of = ctx.window_start;
    auto floor_it = ctx.loc_floor.find(addr);
    if (floor_it != ctx.loc_floor.end() && floor_it->second > as_of) {
      as_of = floor_it->second;
    }
    // Dependency floor: a load whose address derives from a po-earlier load
    // cannot bind before that load did, under models honoring the dependency
    // (armv8x always; lkmm from marked heads — where the source's implied
    // load barrier already advanced the window this far, keeping lkmm
    // behavior bit-exact). tso/pso never version at all.
    if (dep.instr != kInvalidInstr && model_->DepOrdersLoad(dep.kind, dep.marked) &&
        dep.effective > as_of) {
      as_of = dep.effective;
      ++stats_.dep_floored_loads;
    }
    versioned = history_.ValueAsOf(addr, size, as_of, bytes);
    if (versioned) {
      effective_time = as_of;
      ++stats_.spec_stale_loads;
      obs::Metrics::Global()
          .GetHistogram("oemu.version_window_age", obs::TickBuckets())
          .Record(clock_ - as_of);
    } else {
      ++stats_.spec_fresh_loads;
    }
  }
  u32 forwarded = ctx.buffer.Forward(addr, size, bytes);
  if (OZZ_TRACE_ACTIVE()) {
    ThreadId tid = CurrentThreadId();
    if (spec_matched) {
      OZZ_TRACE_EMIT(obs::EvType::kHintHit, tid, clock_, instr, occurrence, 0);
      if (versioned) {
        OZZ_TRACE_EMIT(obs::EvType::kLoadOld, tid, clock_, instr, addr,
                       clock_ - effective_time);
      } else {
        OZZ_TRACE_EMIT(obs::EvType::kLoadNew, tid, clock_, instr, addr, 0);
      }
    }
    if (forwarded > 0) {
      OZZ_TRACE_EMIT(obs::EvType::kStoreForward, tid, clock_, instr, addr, forwarded);
    }
  }
  // The thread has now observed the value current at effective_time; it may
  // never observe anything older at this location.
  u64& floor = ctx.loc_floor[addr];
  if (effective_time > floor) {
    floor = effective_time;
  }
  if (versioned_out != nullptr) {
    *versioned_out = versioned;
  }
  if (effective_out != nullptr) {
    *effective_out = effective_time;
  }
  return BytesToValue(bytes, size);
}

u64 Runtime::Load(InstrId instr, uptr addr, u32 size, bool annotated, Dep dep) {
  obs::SiteTimer site_timer(instr);
  ThreadId tid = CurrentThreadId();
  ThreadCtx& ctx = Ctx(tid);
  OZZ_PROF_EMIT(ctx.read_old.empty() ? obs::ProfCounter::kLoadHintFast
                                     : obs::ProfCounter::kLoadHintSlow,
                1);
  NotifyScheduler(instr, rt::SwitchWhen::kBeforeAccess);
  u32 occ = EnterAccess(ctx, instr);
  RunCheck(addr, size, AccessType::kLoad, instr, CheckPhase::kExecute);
  const ResolvedDep rdep = ResolveDep(ctx, dep);
  bool versioned = false;
  u64 effective = clock_;
  u64 v = ReadValue(ctx, instr, addr, size, occ, rdep, &versioned, &effective);
  ++stats_.loads;
  if (versioned) {
    ++stats_.versioned_load_hits;
  }
  ctx.dep_vals[instr] = DepVal{effective, occ, annotated};
  RecordAccess(ctx, instr, AccessType::kLoad, addr, size, v, occ, annotated, false, versioned,
               rdep);
  if (annotated) {
    // LKMM Case 6 (the Alpha rule): READ_ONCE / atomic loads head address
    // dependencies, so lkmm treats them as a load barrier — later versioned
    // loads cannot read values older than this point. Other models drop the
    // obligation (EffectOf returns no-op); the annotation event is still
    // recorded so analyses see the site.
    if (model_->EffectOf(BarrierType::kImpliedLoad).orders_loads) {
      AdvanceWindow(ctx);
    }
    RecordBarrier(ctx, instr, BarrierType::kImpliedLoad);
  }
  NotifyScheduler(instr, rt::SwitchWhen::kAfterAccess);
  return v;
}

void Runtime::Store(InstrId instr, uptr addr, u32 size, u64 value, bool annotated, Dep dep) {
  obs::SiteTimer site_timer(instr);
  ThreadId tid = CurrentThreadId();
  ThreadCtx& ctx = Ctx(tid);
  OZZ_PROF_EMIT(ctx.delay_store.empty() ? obs::ProfCounter::kStoreHintFast
                                        : obs::ProfCounter::kStoreHintSlow,
                1);
  NotifyScheduler(instr, rt::SwitchWhen::kBeforeAccess);
  u32 occ = EnterAccess(ctx, instr);
  RunCheck(addr, size, AccessType::kStore, instr, CheckPhase::kExecute);
  // The dependency is trace metadata here: a store can never mechanically
  // commit before a po-earlier load executed (the load bound at or before
  // now), so load-store dependency ordering holds at runtime by
  // construction. The axiomatic engine consumes the stamped edge.
  const ResolvedDep rdep = ResolveDep(ctx, dep);

  // Coherence / model order: a store overlapping an in-flight delayed store
  // must not overtake it (same-location stores commit in program order on
  // every architecture), and models that forbid store-store reordering park
  // any store behind a non-empty buffer so FIFO drain preserves program
  // order.
  bool forced_delay = ctx.buffer.DelayRequiredFor(*model_, addr, size);
  bool spec_delayed = opts_.reordering_enabled && model_->StoresDelayable() &&
                      SpecMatches(ctx.delay_store, instr, occ);
  if (spec_delayed && !forced_delay) {
    // Count the hint hit only when the spec actually changed the commit
    // order — a store the coherence/model rule forces to queue anyway would
    // have been delayed with or without the spec.
    ++stats_.spec_delayed_stores;
    OZZ_TRACE_EMIT(obs::EvType::kHintHit, tid, clock_, instr, occ, 1);
  }
  bool delayed = spec_delayed || forced_delay;
  BufferedStore s{instr, addr, size, value, occ};
  ++stats_.stores;
  RecordAccess(ctx, instr, AccessType::kStore, addr, size, value, occ, annotated, delayed, false,
               rdep);
  if (delayed) {
    s.delayed_at = clock_;
    if (OZZ_TRACE_ACTIVE()) {
      s.delay_seg = ::ozz::obs::TraceRecorder::Active()->segment();
    }
    OZZ_TRACE_EMIT(obs::EvType::kStoreDelayed, tid, clock_, instr, addr, value);
    ctx.buffer.Push(s);
    ++stats_.delayed_stores;
  } else {
    CommitStore(tid, s);
  }
  NotifyScheduler(instr, rt::SwitchWhen::kAfterAccess);
}

u64 Runtime::LoadAcquire(InstrId instr, uptr addr, u32 size) {
  obs::SiteTimer site_timer(instr);
  ThreadId tid = CurrentThreadId();
  ThreadCtx& ctx = Ctx(tid);
  NotifyScheduler(instr, rt::SwitchWhen::kBeforeAccess);
  u32 occ = EnterAccess(ctx, instr);
  RunCheck(addr, size, AccessType::kLoad, instr, CheckPhase::kExecute);
  bool versioned = false;
  u64 effective = clock_;
  u64 v = ReadValue(ctx, instr, addr, size, occ, ResolvedDep{}, &versioned, &effective);
  ++stats_.loads;
  if (versioned) {
    ++stats_.versioned_load_hits;
  }
  // An acquire load can head a dependency chain like any marked load.
  ctx.dep_vals[instr] = DepVal{effective, occ, true};
  RecordAccess(ctx, instr, AccessType::kLoad, addr, size, v, occ, true, false, versioned,
               ResolvedDep());
  // Case 4: behave as if a load barrier sits right after the acquire load
  // (acquire closes the window under every model — release/acquire are
  // respected modulo every relaxation matrix).
  if (model_->EffectOf(BarrierType::kAcquire).orders_loads) {
    AdvanceWindow(ctx);
  }
  RecordBarrier(ctx, instr, BarrierType::kAcquire);
  NotifyScheduler(instr, rt::SwitchWhen::kAfterAccess);
  return v;
}

void Runtime::StoreRelease(InstrId instr, uptr addr, u32 size, u64 value) {
  obs::SiteTimer site_timer(instr);
  ThreadId tid = CurrentThreadId();
  ThreadCtx& ctx = Ctx(tid);
  NotifyScheduler(instr, rt::SwitchWhen::kBeforeAccess);
  u32 occ = EnterAccess(ctx, instr);
  RunCheck(addr, size, AccessType::kStore, instr, CheckPhase::kExecute);
  // Case 5: behave as if a store barrier sits right before the release
  // store — every precedent access completes before it, and the release
  // store itself is never delayed. This holds under every model: a release
  // that jumped the queue would break the store order of models that forbid
  // store-store reordering, and skipping a legal reordering is always sound.
  FlushLocked(tid, ctx);
  RecordBarrier(ctx, instr, BarrierType::kRelease);
  ++stats_.stores;
  RecordAccess(ctx, instr, AccessType::kStore, addr, size, value, occ, true, false, false,
               ResolvedDep());
  CommitStore(tid, BufferedStore{instr, addr, size, value, occ});
  NotifyScheduler(instr, rt::SwitchWhen::kAfterAccess);
}

u64 Runtime::Rmw(InstrId instr, uptr addr, u32 size, RmwOrder order, u64 (*fn)(u64, u64),
                 u64 operand) {
  obs::SiteTimer site_timer(instr);
  ThreadId tid = CurrentThreadId();
  ThreadCtx& ctx = Ctx(tid);
  NotifyScheduler(instr, rt::SwitchWhen::kBeforeAccess);
  u32 occ = EnterAccess(ctx, instr);
  RunCheck(addr, size, AccessType::kStore, instr, CheckPhase::kExecute);

  const RmwEffect eff = model_->EffectOfRmw(order);
  if (eff.flush_before) {
    FlushLocked(tid, ctx);
    RecordBarrier(ctx, instr,
                  order == RmwOrder::kRelease ? BarrierType::kRelease : BarrierType::kRmwFull);
  }
  // Read through the buffer so a pending own store to this location is seen.
  u8 bytes[8];
  std::memcpy(bytes, reinterpret_cast<const void*>(addr), size);
  ctx.buffer.Forward(addr, size, bytes);
  u64 old = BytesToValue(bytes, size);
  u64 updated = fn(old, operand);
  // The load half reads at the current clock and is annotated: it may head
  // dependency chains (e.g. a pointer installed by xchg and then chased).
  ctx.dep_vals[instr] = DepVal{clock_, occ, true};

  bool forced_delay = ctx.buffer.DelayRequiredFor(*model_, addr, size);
  bool spec_delayed = eff.delayable && opts_.reordering_enabled && model_->StoresDelayable() &&
                      SpecMatches(ctx.delay_store, instr, occ);
  if (spec_delayed && !forced_delay) {
    // Same rule as Store(): only specs that changed the commit order count.
    ++stats_.spec_delayed_stores;
    OZZ_TRACE_EMIT(obs::EvType::kHintHit, tid, clock_, instr, occ, 1);
  }
  bool delayed = spec_delayed || forced_delay;
  BufferedStore s{instr, addr, size, updated, occ};
  ++stats_.stores;
  ++stats_.loads;
  RecordAccess(ctx, instr, AccessType::kLoad, addr, size, old, occ, true, false, false,
               ResolvedDep());
  RecordAccess(ctx, instr, AccessType::kStore, addr, size, updated, occ, true, delayed, false,
               ResolvedDep());
  if (delayed) {
    s.delayed_at = clock_;
    if (OZZ_TRACE_ACTIVE()) {
      s.delay_seg = ::ozz::obs::TraceRecorder::Active()->segment();
    }
    OZZ_TRACE_EMIT(obs::EvType::kStoreDelayed, tid, clock_, instr, addr, updated);
    ctx.buffer.Push(s);
    ++stats_.delayed_stores;
  } else {
    CommitStore(tid, s);
  }
  if (eff.advance_after) {
    AdvanceWindow(ctx);
    if (order == RmwOrder::kAcquire && !eff.flush_before) {
      RecordBarrier(ctx, instr, BarrierType::kAcquire);
    }
  }
  NotifyScheduler(instr, rt::SwitchWhen::kAfterAccess);
  return old;
}

void Runtime::Barrier(InstrId instr, BarrierType type) {
  obs::SiteTimer site_timer(instr);
  ThreadId tid = CurrentThreadId();
  ThreadCtx& ctx = Ctx(tid);
  NotifyScheduler(instr, rt::SwitchWhen::kBeforeAccess);
  BarrierClass cls = model_->EffectOf(type);
  u64 pending = 0;
  if (cls.orders_stores) {
    pending = ctx.buffer.size();
    FlushLocked(tid, ctx);
  }
  if (cls.orders_loads) {
    AdvanceWindow(ctx);
  }
  ++stats_.barriers;
  RecordBarrier(ctx, instr, type);
  OZZ_TRACE_EMIT(obs::EvType::kBarrierFlush, tid, clock_, instr, pending,
                 static_cast<u64>(type));
  NotifyScheduler(instr, rt::SwitchWhen::kAfterAccess);
}

}  // namespace ozz::oemu
