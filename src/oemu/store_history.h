// Store history (§3.2).
//
// A global record of how memory values changed in the past. Each committed
// store appends an entry carrying the written range, the previous bytes it
// overwrote, and the logical commit timestamp. A *versioned load* with
// versioning window (t_rmb, t_cur] reconstructs the value a location held at
// time t_rmb by starting from current memory and undoing, newest-first, every
// commit that happened after t_rmb.
#ifndef OZZ_SRC_OEMU_STORE_HISTORY_H_
#define OZZ_SRC_OEMU_STORE_HISTORY_H_

#include <vector>

#include "src/base/ids.h"

namespace ozz::oemu {

struct HistoryEntry {
  uptr addr = 0;
  u32 size = 0;      // 1..8
  u64 old_value = 0; // bytes the store overwrote
  u64 new_value = 0; // bytes the store wrote
  u64 timestamp = 0; // logical commit time
  ThreadId thread = kAnyThread;
  InstrId instr = kInvalidInstr;
};

class StoreHistory {
 public:
  // Out-of-line: records the post-append size in the "oemu.history_size"
  // histogram when the profiler is active.
  void Append(const HistoryEntry& e);

  // Rewrites `bytes` (pre-filled with the *current* memory contents of
  // [addr, addr+size)) to the value the range held at time `as_of`.
  // Returns true if any byte was rewound (i.e. the range changed after
  // `as_of`, so the load observably read an old version).
  bool ValueAsOf(uptr addr, u32 size, u64 as_of, u8* bytes) const;

  // True if any committed store overlapping [addr, addr+size) has a
  // timestamp strictly greater than `t`.
  bool ChangedAfter(uptr addr, u32 size, u64 t) const;

  std::size_t size() const { return entries_.size(); }
  const std::vector<HistoryEntry>& entries() const { return entries_; }
  void Clear() { entries_.clear(); }

 private:
  std::vector<HistoryEntry> entries_;  // append-only, timestamp-ordered
};

}  // namespace ozz::oemu

#endif  // OZZ_SRC_OEMU_STORE_HISTORY_H_
