// Pluggable memory-model backends (ROADMAP item 3).
//
// OZZ's delay/version discipline encodes one memory model. Historically that
// was the LKMM-compliant rule set of §3.3/§10.1, hard-coded in three places
// that had to agree by hand: the OEMU runtime's commit/window logic, the
// axiomatic engine's ppo cases, and the fence synthesizer's barrier lattice.
// MemoryModel extracts those rules into one shared table so that the same
// scenarios become a per-model workload matrix ("bug triggers under ARM but
// not TSO" is a reportable fact, not a code fork).
//
// A model answers exactly the questions the system used to answer inline:
//   * may a store be delayed past a later access (RelaxationMatrix
//     store_store / store_load), and may a versioned load's window rewind
//     (load_load), and is load-store reordering emulated (load_store)?
//   * what does each Table-1 barrier flush/advance under this model
//     (EffectOf)?
//   * what does each RmwOrder strength flush/advance, and is its store half
//     delayable (EffectOfRmw)?
//   * which fence repairs a given reordering class, and in which cost order
//     should synthesis try candidates (MinimalFenceFor / FenceLattice)?
//
// Model-independent invariants the runtime enforces regardless of the matrix
// (they hold on every architecture the kernel supports):
//   * per-location coherence — same-location stores never bypass each other,
//     and a thread never reads a value older than one it already observed;
//   * release stores are never delayed (forgoes a legal reordering, never
//     emulates an illegal one) and acquire loads close the window;
//   * loads are never *delayed* mechanically — load-store reordering, where a
//     model allows it (armv8x), exists only in the axiomatic engine's edge
//     set, making the engine more permissive than the runtime, which keeps
//     refutations sound (see tests/axiomatic_test.cc's property direction).
//
// Everything here is a plain constexpr-constructible table: no virtual
// dispatch on the hot path, and the four instances live in static storage
// (Lkmm()/Tso()/Pso()/Armv8x()).
#ifndef OZZ_SRC_OEMU_MEMORY_MODEL_H_
#define OZZ_SRC_OEMU_MEMORY_MODEL_H_

#include <string>
#include <vector>

#include "src/base/ids.h"
#include "src/oemu/event.h"

namespace ozz::oemu {

// Memory-ordering strength of a read-modify-write operation; mirrors the
// Linux kernel's atomic families (value-returning RMWs are fully ordered,
// *_lock/_unlock variants are acquire/release, plain bitops are relaxed).
// Lives here (not runtime.h) because the per-model RMW effect table is part
// of the memory model.
enum class RmwOrder : u8 { kRelaxed, kFull, kAcquire, kRelease };

enum class ModelId : u8 { kLkmm, kTso, kPso, kArmv8x };

// Which of the four reordering classes the model exhibits. The runtime's
// emulation mechanisms map onto them directly: store_store and store_load
// gate the virtual store buffer (delayed stores), load_load gates the
// versioning window (stale loads), load_store exists only axiomatically.
struct RelaxationMatrix {
  bool store_store = false;  // a later store may become visible first
  bool store_load = false;   // a store may commit after a later load executed
  bool load_load = false;    // a later load may observe an older value
  bool load_store = false;   // a load may bind after a later store commits
};

// What an RMW of a given strength does to the emulation state.
struct RmwEffect {
  bool flush_before = false;   // drain the store buffer before the RMW
  bool advance_after = false;  // close the versioning window after the RMW
  bool delayable = false;      // the RMW's store half may honor delay specs
};

class MemoryModel {
 public:
  // Fence-synthesis candidate operations, model-independent identities; the
  // per-model lattice orders the subset that is meaningful under the model
  // by repair cost (cheapest first).
  enum class FenceOp : u8 {
    kWmb,             // insert smp_wmb() between the pair
    kRmb,             // insert smp_rmb() between the pair
    kReleaseUpgrade,  // upgrade the second store to smp_store_release()
    kAcquireUpgrade,  // upgrade the first load to smp_load_acquire()
    kMb,              // insert smp_mb() between the pair
  };

  constexpr MemoryModel(ModelId id, const char* name, RelaxationMatrix rx)
      : id_(id), name_(name), rx_(rx) {}

  ModelId id() const { return id_; }
  const char* name() const { return name_; }
  const RelaxationMatrix& relaxations() const { return rx_; }

  // Can any store be parked in the virtual store buffer at all / can any
  // load be served from the store history? When false the corresponding
  // control interface (delay_store_at / read_old_value_at) is inert.
  bool StoresDelayable() const { return rx_.store_store || rx_.store_load; }
  bool LoadsVersionable() const { return rx_.load_load; }

  // Table-1 barrier effect under this model: orders_stores drains the store
  // buffer, orders_loads closes the versioning window. For lkmm this is
  // exactly the historical ClassOf(); weaker models turn barriers that the
  // hardware already guarantees into no-ops (e.g. smp_wmb on TSO).
  BarrierClass EffectOf(BarrierType type) const;

  RmwEffect EffectOfRmw(RmwOrder order) const;

  // Dependency ordering (LKMM addr/data/ctrl, §"Dependency ordering" in
  // DESIGN.md). A dependency links a value-carrying load L to a po-later
  // access A that consumes L's value. These predicates answer: does the
  // dependency forbid A being reordered before L under this model?
  //
  //   * DepOrdersLoad  — A is a load (addr dependency; the only kind that
  //     can target a load). Gates the versioning window: a dep-ordered load
  //     must not observe a value older than what its source load saw.
  //   * DepOrdersStore — A is a store (data or ctrl dependency). Only
  //     meaningful where load-store reordering is modeled (armv8x), and only
  //     in the axiomatic engine: the runtime cannot mechanically invert a
  //     load with a po-later store (the load binds before the store commits).
  //
  // `src_marked` is whether L was an annotated (READ_ONCE-class) load. LKMM
  // only promises dependency ordering from marked loads — the compiler may
  // break dependencies headed by plain loads — while armv8x hardware honors
  // the syntactic dependency regardless of marking. Models whose loads never
  // reorder (tso/pso) are trivially dep-ordered.
  bool DepOrdersLoad(DepKind kind, bool src_marked) const;
  bool DepOrdersStore(DepKind kind, bool src_marked) const;

  // Candidate repairs in ascending cost, restricted to operations that are
  // meaningful under this model (no smp_rmb candidates on a model whose
  // loads never reorder).
  const std::vector<FenceOp>& FenceLattice() const;

  // The minimal fence repairing a reordering of `first` followed by `second`
  // (the reordering classes of the matrix). This is the model's a-priori
  // answer; fence synthesis still verifies candidates against the slice.
  FenceOp MinimalFenceFor(AccessType first, AccessType second) const;

  // ---- Registry ----
  static const MemoryModel& Lkmm();
  static const MemoryModel& Tso();
  static const MemoryModel& Pso();
  static const MemoryModel& Armv8x();
  // nullptr when `name` names no model.
  static const MemoryModel* ByName(const std::string& name);
  static const std::vector<const MemoryModel*>& All();
  // The tool-level default: $OZZ_DEFAULT_MODEL when set and valid, else
  // lkmm. Library code must NOT call this — a null options.model always
  // resolves to Lkmm() (hermetic, environment-independent) via Resolve().
  static const MemoryModel& Default();
  static const MemoryModel& Resolve(const MemoryModel* model) {
    return model != nullptr ? *model : Lkmm();
  }
  // "lkmm|tso|pso|armv8x" for --help texts.
  static std::string NamesForHelp();

 private:
  ModelId id_;
  const char* name_;
  RelaxationMatrix rx_;
};

const char* FenceOpName(MemoryModel::FenceOp op);

}  // namespace ozz::oemu

#endif  // OZZ_SRC_OEMU_MEMORY_MODEL_H_
