#include "src/oemu/store_history.h"

#include "src/obs/metrics.h"
#include "src/obs/prof.h"

namespace ozz::oemu {
namespace {

bool RangesOverlap(uptr a, u32 asz, uptr b, u32 bsz) {
  return a < b + bsz && b < a + asz;
}

}  // namespace

void StoreHistory::Append(const HistoryEntry& e) {
  entries_.push_back(e);
  if (OZZ_PROF_ACTIVE()) {
    static obs::Histogram& history_size =
        obs::Metrics::Global().GetHistogram("oemu.history_size", obs::TickBuckets());
    history_size.Record(entries_.size());
  }
}

bool StoreHistory::ValueAsOf(uptr addr, u32 size, u64 as_of, u8* bytes) const {
  u8 current[8];
  for (u32 i = 0; i < size; ++i) {
    current[i] = bytes[i];
  }
  // Entries are appended in commit order, so walking backwards visits
  // newest-first; undoing each commit newer than `as_of` reconstructs the
  // value the range held at `as_of` (the final value of each byte is the
  // old_value of the oldest post-`as_of` write touching it).
  u64 scanned = 0;
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    const HistoryEntry& e = *it;
    if (e.timestamp <= as_of) {
      break;
    }
    ++scanned;
    if (!RangesOverlap(e.addr, e.size, addr, size)) {
      continue;
    }
    for (u32 i = 0; i < e.size; ++i) {
      uptr byte_addr = e.addr + i;
      if (byte_addr >= addr && byte_addr < addr + size) {
        bytes[byte_addr - addr] = static_cast<u8>(e.old_value >> (8 * i));
      }
    }
  }
  // Lookup cost/benefit of the versioning machinery: how deep each rewind
  // scanned, and whether it found anything older. ValueAsOf only runs on
  // read-old spec matches, so the registry calls stay off the hot path.
  obs::Metrics::Global().GetCounter("oemu.history_lookups").Add();
  obs::Metrics::Global()
      .GetHistogram("oemu.history_scan_depth", obs::TickBuckets())
      .Record(scanned);
  bool hit = false;
  for (u32 i = 0; i < size; ++i) {
    if (bytes[i] != current[i]) {
      hit = true;
      break;
    }
  }
  if (hit) {
    obs::Metrics::Global().GetCounter("oemu.history_lookup_hits").Add();
  }
  return hit;
}

bool StoreHistory::ChangedAfter(uptr addr, u32 size, u64 t) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->timestamp <= t) {
      break;
    }
    if (RangesOverlap(it->addr, it->size, addr, size)) {
      return true;
    }
  }
  return false;
}

}  // namespace ozz::oemu
