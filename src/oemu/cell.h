// Instrumented shared-memory cells and access macros.
//
// The paper's compiler pass transforms `x = 1;` into `store_value(&x, 1);`
// (Fig. 2). This reproduction expresses the same transformation in the
// source: shared state of the simulated kernel is declared as Cell<T> and
// accessed through the OSK_* macros, each of which registers a stable
// per-call-site InstrId and routes the access through the active OEMU
// runtime. When no runtime is active the macros perform the plain access —
// that is the "kernel compiled without OEMU" configuration of Table 5.
#ifndef OZZ_SRC_OEMU_CELL_H_
#define OZZ_SRC_OEMU_CELL_H_

#include <bit>
#include <cstring>
#include <type_traits>

#include "src/base/ids.h"
#include "src/oemu/instr.h"
#include "src/oemu/runtime.h"

namespace ozz::oemu {

static_assert(std::endian::native == std::endian::little,
              "the OEMU value encoding assumes a little-endian host");

template <typename T>
class Cell {
  static_assert(std::is_trivially_copyable_v<T>, "Cell requires trivially copyable types");
  static_assert(sizeof(T) <= 8, "Cell supports up to 8-byte accesses");

 public:
  constexpr Cell() : raw_{} {}
  constexpr explicit Cell(T v) : raw_(v) {}

  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  // Uninstrumented access, for construction/inspection outside simulation.
  T raw() const { return raw_; }
  void set_raw(T v) { raw_ = v; }
  uptr address() const { return reinterpret_cast<uptr>(&raw_); }

 private:
  T raw_;
};

template <typename T>
u64 ToWord(T v) {
  u64 w = 0;
  std::memcpy(&w, &v, sizeof(T));
  return w;
}

template <typename T>
T FromWord(u64 w) {
  T v;
  std::memcpy(&v, &w, sizeof(T));
  return v;
}

// A dependency token, captured at a value-carrying load via the *_TOK macros
// and handed to a po-later access whose address/value/branch condition is
// computed from that load's value (the *_DEP macros). It is the source-level
// stand-in for the register dataflow the paper's compiler pass would track:
// the token names the source call site, and the runtime resolves it against
// the thread's last execution of that site. A default-constructed token
// carries no dependency.
struct DepToken {
  InstrId src = kInvalidInstr;
};

template <typename T>
T LoadCell(InstrId instr, const Cell<T>& cell) {
  Runtime* rt = Runtime::Active();
  if (rt == nullptr || !rt->InstrumentationEnabledFor(instr)) {
    return cell.raw();
  }
  return FromWord<T>(rt->Load(instr, cell.address(), sizeof(T), /*annotated=*/false));
}

template <typename T>
T ReadOnceCell(InstrId instr, const Cell<T>& cell) {
  Runtime* rt = Runtime::Active();
  if (rt == nullptr || !rt->InstrumentationEnabledFor(instr)) {
    return cell.raw();
  }
  return FromWord<T>(rt->Load(instr, cell.address(), sizeof(T), /*annotated=*/true));
}

template <typename T>
T LoadCellTok(InstrId instr, const Cell<T>& cell, DepToken* tok) {
  tok->src = instr;
  return LoadCell(instr, cell);
}

template <typename T>
T ReadOnceCellTok(InstrId instr, const Cell<T>& cell, DepToken* tok) {
  tok->src = instr;
  return ReadOnceCell(instr, cell);
}

// A plain load whose address derives from the token's source load
// (rcu_dereference-style pointer chase). The dependency — not an annotation —
// is what orders it: armv8x honors any head, lkmm honors marked heads.
template <typename T>
T LoadCellAddrDep(InstrId instr, const Cell<T>& cell, DepToken tok) {
  Runtime* rt = Runtime::Active();
  if (rt == nullptr || !rt->InstrumentationEnabledFor(instr)) {
    return cell.raw();
  }
  return FromWord<T>(rt->Load(instr, cell.address(), sizeof(T), /*annotated=*/false,
                              Dep{tok.src, DepKind::kAddr}));
}

// A plain store whose value (kData) or execution (kCtrl: the store sits
// under a branch testing the loaded value) derives from the token's source.
template <typename T>
void StoreCellDep(InstrId instr, Cell<T>& cell, std::type_identity_t<T> v, DepToken tok,
                  DepKind kind) {
  Runtime* rt = Runtime::Active();
  if (rt == nullptr || !rt->InstrumentationEnabledFor(instr)) {
    cell.set_raw(v);
    return;
  }
  rt->Store(instr, cell.address(), sizeof(T), ToWord(v), /*annotated=*/false,
            Dep{tok.src, kind});
}

template <typename T>
T LoadAcquireCell(InstrId instr, const Cell<T>& cell) {
  Runtime* rt = Runtime::Active();
  if (rt == nullptr || !rt->InstrumentationEnabledFor(instr)) {
    return cell.raw();
  }
  return FromWord<T>(rt->LoadAcquire(instr, cell.address(), sizeof(T)));
}

template <typename T>
void StoreCell(InstrId instr, Cell<T>& cell, std::type_identity_t<T> v) {
  Runtime* rt = Runtime::Active();
  if (rt == nullptr || !rt->InstrumentationEnabledFor(instr)) {
    cell.set_raw(v);
    return;
  }
  rt->Store(instr, cell.address(), sizeof(T), ToWord(v), /*annotated=*/false);
}

template <typename T>
void WriteOnceCell(InstrId instr, Cell<T>& cell, std::type_identity_t<T> v) {
  Runtime* rt = Runtime::Active();
  if (rt == nullptr || !rt->InstrumentationEnabledFor(instr)) {
    cell.set_raw(v);
    return;
  }
  rt->Store(instr, cell.address(), sizeof(T), ToWord(v), /*annotated=*/true);
}

template <typename T>
void StoreReleaseCell(InstrId instr, Cell<T>& cell, std::type_identity_t<T> v) {
  Runtime* rt = Runtime::Active();
  if (rt == nullptr || !rt->InstrumentationEnabledFor(instr)) {
    cell.set_raw(v);
    return;
  }
  rt->StoreRelease(instr, cell.address(), sizeof(T), ToWord(v));
}

// Atomic read-modify-write on an integral cell; returns the old value.
template <typename T>
T RmwCell(InstrId instr, Cell<T>& cell, RmwOrder order, u64 (*fn)(u64, u64), u64 operand) {
  static_assert(std::is_integral_v<T>);
  Runtime* rt = Runtime::Active();
  if (rt == nullptr || !rt->InstrumentationEnabledFor(instr)) {
    T old = cell.raw();
    cell.set_raw(FromWord<T>(fn(ToWord(old), operand)));
    return old;
  }
  return FromWord<T>(rt->Rmw(instr, cell.address(), sizeof(T), order, fn, operand));
}

inline void BarrierAt(InstrId instr, BarrierType type) {
  Runtime* rt = Runtime::Active();
  if (rt != nullptr && rt->InstrumentationEnabledFor(instr)) {
    rt->Barrier(instr, type);
  }
}

// Raw-address byte accesses, for buffers that are not laid out as Cells
// (kmalloc'd payload arrays). Fully instrumented like cell accesses.
inline u8 LoadByteAt(InstrId instr, uptr addr) {
  Runtime* rt = Runtime::Active();
  if (rt == nullptr || !rt->InstrumentationEnabledFor(instr)) {
    return *reinterpret_cast<const u8*>(addr);
  }
  return static_cast<u8>(rt->Load(instr, addr, 1, /*annotated=*/false));
}

inline void StoreByteAt(InstrId instr, uptr addr, u8 v) {
  Runtime* rt = Runtime::Active();
  if (rt == nullptr || !rt->InstrumentationEnabledFor(instr)) {
    *reinterpret_cast<u8*>(addr) = v;
    return;
  }
  rt->Store(instr, addr, 1, v, /*annotated=*/false);
}

}  // namespace ozz::oemu

// ---- Instrumentation macros (the "compiler pass") ----

#define OSK_LOAD(cell) \
  (::ozz::oemu::LoadCell(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kLoad, #cell), (cell)))

#define OSK_STORE(cell, v) \
  (::ozz::oemu::StoreCell(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kStore, #cell), (cell), (v)))

#define OSK_READ_ONCE(cell) \
  (::ozz::oemu::ReadOnceCell(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kReadOnce, #cell), (cell)))

#define OSK_WRITE_ONCE(cell, v) \
  (::ozz::oemu::WriteOnceCell(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kWriteOnce, #cell), (cell), \
                              (v)))

#define OSK_LOAD_ACQUIRE(cell)                                                               \
  (::ozz::oemu::LoadAcquireCell(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kLoadAcquire, #cell), \
                                (cell)))

#define OSK_STORE_RELEASE(cell, v)                                                             \
  (::ozz::oemu::StoreReleaseCell(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kStoreRelease, #cell), \
                                 (cell), (v)))

#define OSK_RMW(cell, order, fn, operand)                                             \
  (::ozz::oemu::RmwCell(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kRmw, #cell), (cell), \
                        (order), (fn), (operand)))

#define OSK_SMP_MB()                                                                \
  (::ozz::oemu::BarrierAt(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kBarrier, "smp_mb"), \
                          ::ozz::oemu::BarrierType::kFull))

#define OSK_SMP_RMB()                                                                 \
  (::ozz::oemu::BarrierAt(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kBarrier, "smp_rmb"), \
                          ::ozz::oemu::BarrierType::kLoadBarrier))

#define OSK_LOAD_BYTE(addr) \
  (::ozz::oemu::LoadByteAt(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kLoad, #addr), (addr)))

#define OSK_STORE_BYTE(addr, v) \
  (::ozz::oemu::StoreByteAt(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kStore, #addr), (addr), (v)))

#define OSK_SMP_WMB()                                                                 \
  (::ozz::oemu::BarrierAt(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kBarrier, "smp_wmb"), \
                          ::ozz::oemu::BarrierType::kStoreBarrier))

// ---- Dependency-carrying variants ----
// `tok` is a local ::ozz::oemu::DepToken. The *_TOK loads capture it (they
// are dependency heads); the *_DEP accesses consume it (their address, value
// or controlling branch derives from the head's value).

#define OSK_LOAD_TOK(cell, tok)                                                      \
  (::ozz::oemu::LoadCellTok(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kLoad, #cell), \
                            (cell), &(tok)))

#define OSK_READ_ONCE_TOK(cell, tok)                                                         \
  (::ozz::oemu::ReadOnceCellTok(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kReadOnce, #cell), \
                                (cell), &(tok)))

#define OSK_LOAD_ADDR_DEP(cell, tok)                                                     \
  (::ozz::oemu::LoadCellAddrDep(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kLoad, #cell), \
                                (cell), (tok)))

#define OSK_STORE_DATA_DEP(cell, v, tok)                                             \
  (::ozz::oemu::StoreCellDep(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kStore, #cell), \
                             (cell), (v), (tok), ::ozz::oemu::DepKind::kData))

#define OSK_STORE_CTRL_DEP(cell, v, tok)                                             \
  (::ozz::oemu::StoreCellDep(OZZ_OEMU_SITE(::ozz::oemu::InstrKind::kStore, #cell), \
                             (cell), (v), (tok), ::ozz::oemu::DepKind::kCtrl))

#endif  // OZZ_SRC_OEMU_CELL_H_
