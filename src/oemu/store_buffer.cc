#include "src/oemu/store_buffer.h"

#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/prof.h"
#include "src/oemu/memory_model.h"

namespace ozz::oemu {
namespace {

bool RangesOverlap(uptr a, u32 asz, uptr b, u32 bsz) {
  return a < b + bsz && b < a + asz;
}

}  // namespace

void StoreBuffer::Push(const BufferedStore& s) {
  entries_.push_back(s);
  if (OZZ_PROF_ACTIVE()) {
    static obs::Histogram& occupancy =
        obs::Metrics::Global().GetHistogram("oemu.sb_occupancy", obs::SmallBuckets());
    occupancy.Record(entries_.size());
  }
}

bool StoreBuffer::Overlaps(uptr addr, u32 size) const {
  for (const BufferedStore& s : entries_) {
    if (RangesOverlap(s.addr, s.size, addr, size)) {
      return true;
    }
  }
  return false;
}

bool StoreBuffer::DelayRequiredFor(const MemoryModel& model, uptr addr, u32 size) const {
  return Overlaps(addr, size) ||
         (!model.relaxations().store_store && !entries_.empty());
}

u32 StoreBuffer::Forward(uptr addr, u32 size, u8* bytes) const {
  bool covered[8] = {};
  // Oldest-to-newest: later entries overwrite earlier ones per byte, so the
  // newest buffered value of each byte wins.
  for (const BufferedStore& s : entries_) {
    if (!RangesOverlap(s.addr, s.size, addr, size)) {
      continue;
    }
    for (u32 i = 0; i < s.size; ++i) {
      uptr byte_addr = s.addr + i;
      if (byte_addr >= addr && byte_addr < addr + size) {
        bytes[byte_addr - addr] = static_cast<u8>(s.value >> (8 * i));
        covered[byte_addr - addr] = true;
      }
    }
  }
  u32 forwarded = 0;
  for (u32 i = 0; i < size && i < 8; ++i) {
    forwarded += covered[i] ? 1 : 0;
  }
  return forwarded;
}

void StoreBuffer::Drain(const std::function<void(const BufferedStore&)>& commit_one) {
  std::deque<BufferedStore> pending = std::move(entries_);
  entries_.clear();
  for (const BufferedStore& s : pending) {
    commit_one(s);
  }
}

}  // namespace ozz::oemu
