#include "src/oemu/memory_model.h"

#include <cstdlib>

namespace ozz::oemu {
namespace {

// The four instantiations. lkmm is bit-exact with the historical inline
// rules; tso keeps only store-load reordering (x86: the store buffer exists
// but drains in order and every barrier except a full fence is a no-op);
// pso adds store-store on top of tso (wmb becomes meaningful); armv8x
// exhibits all four relaxations modulo coherence and release/acquire.
constexpr MemoryModel kLkmm{ModelId::kLkmm, "lkmm",
                            {/*store_store=*/true, /*store_load=*/true,
                             /*load_load=*/true, /*load_store=*/false}};
constexpr MemoryModel kTso{ModelId::kTso, "tso",
                           {/*store_store=*/false, /*store_load=*/true,
                            /*load_load=*/false, /*load_store=*/false}};
constexpr MemoryModel kPso{ModelId::kPso, "pso",
                           {/*store_store=*/true, /*store_load=*/true,
                            /*load_load=*/false, /*load_store=*/false}};
constexpr MemoryModel kArmv8x{ModelId::kArmv8x, "armv8x",
                              {/*store_store=*/true, /*store_load=*/true,
                               /*load_load=*/true, /*load_store=*/true}};

}  // namespace

BarrierClass MemoryModel::EffectOf(BarrierType type) const {
  // Model-independent rows first. Release stores always drain the buffer
  // (the runtime never delays them, in any model: a release that jumped the
  // queue would break store-store order of models that forbid it, and
  // skipping a legal reordering is always sound). Acquire always closes the
  // window (inert when loads are unversionable). Full barriers are full
  // barriers everywhere.
  switch (type) {
    case BarrierType::kFull:
    case BarrierType::kRmwFull:
      return {true, true};
    case BarrierType::kRelease:
      return {true, false};
    case BarrierType::kAcquire:
      return {false, true};
    case BarrierType::kStoreBarrier:
      // smp_wmb orders stores only where stores can reorder; on TSO the
      // hardware already keeps them in order and wmb compiles to nothing.
      return {rx_.store_store, false};
    case BarrierType::kLoadBarrier:
      // smp_rmb symmetrically: a no-op where loads never reorder.
      return {false, rx_.load_load};
    case BarrierType::kImpliedLoad:
      // The Alpha address-dependency rule (LKMM Case 6): READ_ONCE heads a
      // dependency and so acts as a load barrier — an LKMM-only obligation;
      // tso/pso loads never reorder anyway and armv8x honors dependencies
      // in hardware without ordering unrelated later loads.
      return {false, id_ == ModelId::kLkmm && rx_.load_load};
  }
  return {false, false};
}

bool MemoryModel::DepOrdersLoad(DepKind kind, bool src_marked) const {
  if (!rx_.load_load) {
    return true;  // loads never reorder at all on tso/pso
  }
  if (kind == DepKind::kCtrl) {
    // load-to-load control dependencies order nothing anywhere: both LKMM
    // and ARMv8 allow the second load to be speculated past the branch.
    return false;
  }
  // addr (and the degenerate data-into-load) case: armv8x hardware tracks
  // the register dataflow and honors any head; LKMM only promises ordering
  // when the head is marked (a plain load's dependency is compiler-breakable).
  return id_ == ModelId::kArmv8x ? true : src_marked;
}

bool MemoryModel::DepOrdersStore(DepKind kind, bool src_marked) const {
  (void)kind;  // addr, data and ctrl all order load->store equally
  if (!rx_.load_store) {
    return true;  // the inversion this would forbid is not modeled at all
  }
  // armv8x: a store whose address/value/execution depends on a load cannot
  // become visible before the load binds, whatever the head. (LKMM never
  // reaches here — its load_store is false.)
  return id_ == ModelId::kArmv8x ? true : src_marked;
}

RmwEffect MemoryModel::EffectOfRmw(RmwOrder order) const {
  // On TSO every atomic RMW is a locked instruction and therefore a full
  // fence regardless of the requested strength.
  if (id_ == ModelId::kTso) {
    return {/*flush_before=*/true, /*advance_after=*/true, /*delayable=*/false};
  }
  switch (order) {
    case RmwOrder::kFull:
      return {true, true, false};
    case RmwOrder::kAcquire:
      return {false, true, false};
    case RmwOrder::kRelease:
      return {true, false, false};
    case RmwOrder::kRelaxed:
      return {false, false, true};
  }
  return {false, false, false};
}

const std::vector<MemoryModel::FenceOp>& MemoryModel::FenceLattice() const {
  // Cheapest-first candidate order per model. Operations that cannot repair
  // anything under the model (smp_wmb on TSO, smp_rmb / acquire upgrades on
  // in-order-load models) are omitted entirely.
  static const std::vector<FenceOp> kFullLattice = {
      FenceOp::kWmb, FenceOp::kRmb, FenceOp::kReleaseUpgrade,
      FenceOp::kAcquireUpgrade, FenceOp::kMb};
  static const std::vector<FenceOp> kStoreOnlyLattice = {
      FenceOp::kWmb, FenceOp::kReleaseUpgrade, FenceOp::kMb};
  static const std::vector<FenceOp> kMbOnlyLattice = {FenceOp::kMb};
  if (rx_.store_store && rx_.load_load) {
    return kFullLattice;
  }
  if (rx_.store_store) {
    return kStoreOnlyLattice;
  }
  return kMbOnlyLattice;
}

MemoryModel::FenceOp MemoryModel::MinimalFenceFor(AccessType first, AccessType second) const {
  const bool stores = first == AccessType::kStore && second == AccessType::kStore;
  const bool loads = first == AccessType::kLoad && second == AccessType::kLoad;
  if (stores && EffectOf(BarrierType::kStoreBarrier).orders_stores) {
    return FenceOp::kWmb;
  }
  if (loads && EffectOf(BarrierType::kLoadBarrier).orders_loads) {
    return FenceOp::kRmb;
  }
  // Store-load (and load-store where modeled) needs the full fence, as does
  // any class whose dedicated barrier is a no-op under this model.
  return FenceOp::kMb;
}

const MemoryModel& MemoryModel::Lkmm() { return kLkmm; }
const MemoryModel& MemoryModel::Tso() { return kTso; }
const MemoryModel& MemoryModel::Pso() { return kPso; }
const MemoryModel& MemoryModel::Armv8x() { return kArmv8x; }

const std::vector<const MemoryModel*>& MemoryModel::All() {
  static const std::vector<const MemoryModel*> kAll = {&kLkmm, &kTso, &kPso, &kArmv8x};
  return kAll;
}

const MemoryModel* MemoryModel::ByName(const std::string& name) {
  for (const MemoryModel* m : All()) {
    if (name == m->name()) {
      return m;
    }
  }
  return nullptr;
}

const MemoryModel& MemoryModel::Default() {
  const char* env = std::getenv("OZZ_DEFAULT_MODEL");
  if (env != nullptr) {
    if (const MemoryModel* m = ByName(env)) {
      return *m;
    }
  }
  return kLkmm;
}

std::string MemoryModel::NamesForHelp() {
  std::string out;
  for (const MemoryModel* m : All()) {
    if (!out.empty()) {
      out += '|';
    }
    out += m->name();
  }
  return out;
}

const char* FenceOpName(MemoryModel::FenceOp op) {
  switch (op) {
    case MemoryModel::FenceOp::kWmb:
      return "smp_wmb";
    case MemoryModel::FenceOp::kRmb:
      return "smp_rmb";
    case MemoryModel::FenceOp::kReleaseUpgrade:
      return "smp_store_release";
    case MemoryModel::FenceOp::kAcquireUpgrade:
      return "smp_load_acquire";
    case MemoryModel::FenceOp::kMb:
      return "smp_mb";
  }
  return "?";
}

}  // namespace ozz::oemu
