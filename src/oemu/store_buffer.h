// Virtual store buffer (§3.1).
//
// A per-thread temporary storage holding values of delayed store operations
// before they are committed to memory. While a value sits in the buffer it is
// invisible to other simulated CPUs; loads on the owning thread are forwarded
// from the buffer (newest overlapping store wins, byte-granular), matching
// the hierarchical search described in "Forwarding values to subsequent
// loads". Entries commit in FIFO (program) order so per-location coherence is
// preserved.
#ifndef OZZ_SRC_OEMU_STORE_BUFFER_H_
#define OZZ_SRC_OEMU_STORE_BUFFER_H_

#include <cstddef>
#include <deque>
#include <functional>

#include "src/base/ids.h"

namespace ozz::oemu {

class MemoryModel;

struct BufferedStore {
  InstrId instr = kInvalidInstr;
  uptr addr = 0;
  u32 size = 0;  // 1..8 bytes
  u64 value = 0; // little-endian in the low `size` bytes
  u32 occurrence = 0;
  // Delay provenance, for the residency metrics (src/obs): the logical clock
  // and scheduler segment at which the store was parked. 0 = not delayed
  // (committed straight through).
  u64 delayed_at = 0;
  u64 delay_seg = 0;
};

class StoreBuffer {
 public:
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  // Out-of-line: records the post-push occupancy in the "oemu.sb_occupancy"
  // histogram when the profiler is active.
  void Push(const BufferedStore& s);

  // True if any pending entry overlaps [addr, addr+size).
  bool Overlaps(uptr addr, u32 size) const;

  // Must a new store to [addr, addr+size) be parked behind the buffered
  // entries under `model`? True when it overlaps an in-flight entry
  // (per-location coherence, every model) or when the model forbids
  // store-store reordering and anything is pending at all — FIFO drain then
  // preserves program order, which is how TSO keeps stores in order while
  // still letting them sit past later loads.
  bool DelayRequiredFor(const MemoryModel& model, uptr addr, u32 size) const;

  // Overlays the newest buffered value of each byte of [addr, addr+size) onto
  // `bytes` (which the caller pre-filled from memory/history). Returns the
  // number of bytes forwarded.
  u32 Forward(uptr addr, u32 size, u8* bytes) const;

  // Commits all entries in FIFO order through `commit_one`, then clears.
  void Drain(const std::function<void(const BufferedStore&)>& commit_one);

  // Drops all entries without committing (crash teardown).
  void Clear() { entries_.clear(); }

  const std::deque<BufferedStore>& entries() const { return entries_; }

 private:
  std::deque<BufferedStore> entries_;
};

}  // namespace ozz::oemu

#endif  // OZZ_SRC_OEMU_STORE_BUFFER_H_
