// lockdep-lite: runtime lock-ordering validator (the paper uses Linux's
// lockdep as one of its bug-detecting oracles, §4.4).
//
// Tracks the per-thread set of held lock classes and the global acquisition
// order graph. Acquiring class B while holding class A records the edge
// A -> B; if the reverse edge is already known, a circular-dependency oops is
// raised. Also detects self-recursion on a class.
#ifndef OZZ_SRC_OSK_LOCKDEP_H_
#define OZZ_SRC_OSK_LOCKDEP_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/base/ids.h"
#include "src/osk/oops.h"

namespace ozz::osk {

using LockClassId = u32;

class Lockdep {
 public:
  using RaiseFn = std::function<void(OopsReport)>;

  explicit Lockdep(RaiseFn raise) : raise_(std::move(raise)) {}

  LockClassId RegisterClass(std::string name);
  const std::string& ClassName(LockClassId id) const;

  // Called by lock implementations around acquisition/release.
  void OnAcquire(ThreadId thread, LockClassId cls);
  void OnRelease(ThreadId thread, LockClassId cls);

  // Drops all bookkeeping for a thread (crash teardown).
  void AbandonThread(ThreadId thread);

  bool Holding(ThreadId thread, LockClassId cls) const;

 private:
  RaiseFn raise_;
  std::vector<std::string> class_names_;
  // held locks per thread, in acquisition order
  std::map<ThreadId, std::vector<LockClassId>> held_;
  // order edges: a -> {b}: some thread acquired b while holding a
  std::map<LockClassId, std::set<LockClassId>> order_;
};

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_LOCKDEP_H_
