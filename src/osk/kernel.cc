#include "src/osk/kernel.h"

#include <exception>

#include "src/base/check.h"
#include "src/base/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ozz::osk {

Kernel::Kernel(KernelConfig config) : config_(std::move(config)) {
  lockdep_ = std::make_unique<Lockdep>([this](OopsReport r) { RaiseOops(std::move(r)); });
  kasan_ = std::make_unique<Kasan>(&alloc_, [this](OopsReport r) { RaiseOops(std::move(r)); });
}

Kernel::~Kernel() = default;

void Kernel::Attach(rt::Machine* machine, oemu::Runtime* runtime) {
  machine_ = machine;
  runtime_ = runtime;
  if (runtime_ != nullptr) {
    runtime_->SetAccessCheck([this](uptr addr, u32 size, oemu::AccessType type, InstrId instr,
                                    oemu::Runtime::CheckPhase phase) {
      kasan_->Check(addr, size, type, instr, phase);
    });
  }
  if (machine_ != nullptr) {
    machine_->SetIrqDispatchHook([this](ThreadId) { DispatchIrq(); });
  }
}

void Kernel::RequestIrq(const std::string& name, IrqHandlerFn handler) {
  for (auto& entry : irq_handlers_) {
    if (entry.first == name) {
      entry.second = std::move(handler);
      return;
    }
  }
  irq_handlers_.emplace_back(name, std::move(handler));
}

void Kernel::FreeIrq(const std::string& name) {
  for (auto it = irq_handlers_.begin(); it != irq_handlers_.end(); ++it) {
    if (it->first == name) {
      irq_handlers_.erase(it);
      return;
    }
  }
}

void Kernel::DispatchIrq() {
  if (crashed()) {
    return;
  }
  // Registration order, matching how a shared irq line walks its action
  // chain. A handler oops unwinds through the machine's delivery path.
  for (std::size_t i = 0; i < irq_handlers_.size(); ++i) {
    irq_handlers_[i].second(*this);
  }
}

void Kernel::LocalIrqSave() {
  if (machine_ != nullptr && rt::Machine::CurrentThread() != nullptr) {
    machine_->IrqSave();
    return;
  }
  ++host_irq_depth_;
}

void Kernel::LocalIrqRestore() {
  if (machine_ != nullptr && rt::Machine::CurrentThread() != nullptr) {
    machine_->IrqRestore();
    return;
  }
  OZZ_CHECK_MSG(host_irq_depth_ > 0, "unbalanced LocalIrqRestore");
  --host_irq_depth_;
}

bool Kernel::IrqsDisabled() const {
  if (machine_ != nullptr && rt::Machine::CurrentThread() != nullptr) {
    return machine_->IrqsDisabled();
  }
  return host_irq_depth_ > 0;
}

// kmalloc/kfree acquire slab locks internally; the acquire/release pair
// drains the calling CPU's store buffer and closes its versioning window, so
// the allocator behaves as a fence — no delayed store ever crosses its own
// thread's allocator call (which would otherwise let a store commit into
// memory the same thread freed, a behaviour real spinlock-protected
// allocators exclude).
void Kernel::AllocatorFence() {
  if (runtime_ != nullptr && oemu::Runtime::Active() == runtime_) {
    runtime_->Fence(oemu::Runtime::CurrentThreadId());
  }
}

void* Kernel::KmAllocUninit(std::size_t size, const char* site) {
  AllocatorFence();
  void* p = alloc_.Alloc(size, site, /*zero=*/false);
  if (p == nullptr) {
    OopsReport report;
    report.kind = OopsKind::kAssert;
    report.title = "kernel arena exhausted";
    report.detail = site;
    RaiseOops(std::move(report));
    OZZ_CHECK_MSG(false, "arena exhausted during unwind");
  }
  return p;
}

void* Kernel::KmAlloc(std::size_t size, const char* site) {
  AllocatorFence();
  void* p = alloc_.Alloc(size, site);
  if (p == nullptr) {
    OopsReport report;
    report.kind = OopsKind::kAssert;
    report.title = "kernel arena exhausted";
    report.detail = site;
    RaiseOops(std::move(report));
    OZZ_CHECK_MSG(false, "arena exhausted during unwind");
  }
  return p;
}

void Kernel::KmFree(void* ptr, const char* site) {
  AllocatorFence();
  switch (alloc_.Free(ptr, site)) {
    case Kalloc::FreeResult::kSuccess:
      return;
    case Kalloc::FreeResult::kDoubleFree: {
      OopsReport report;
      report.kind = OopsKind::kDoubleFree;
      report.title = std::string("BUG: double free detected in ") + site;
      report.addr = reinterpret_cast<uptr>(ptr);
      RaiseOops(std::move(report));
      return;
    }
    case Kalloc::FreeResult::kInvalid: {
      OopsReport report;
      report.kind = OopsKind::kGeneralProtection;
      report.title = std::string("BUG: bad kfree in ") + site;
      report.addr = reinterpret_cast<uptr>(ptr);
      RaiseOops(std::move(report));
      return;
    }
  }
}

void Kernel::RaiseOops(OopsReport report) {
  report.thread = oemu::Runtime::CurrentThreadId();
  if (!crash_.has_value()) {
    obs::Metrics::Global().GetCounter("osk.oops").Add();
    OZZ_TRACE_EMIT(obs::EvType::kOracle, report.thread, 0, report.instr,
                   static_cast<u64>(report.kind), report.addr);
  }
  if (std::uncaught_exceptions() > 0) {
    // Raised from a destructor while an exception is unwinding; record the
    // first crash but do not throw a second exception.
    if (!crash_.has_value()) {
      crash_ = std::move(report);
    }
    return;
  }
  if (!crash_.has_value()) {
    crash_ = report;
    OZZ_LOG(Debug) << "oops: " << report.title;
    if (machine_ != nullptr && rt::Machine::CurrentThread() != nullptr) {
      machine_->KillOthers();
    }
    if (runtime_ != nullptr) {
      runtime_->AbandonThread(report.thread);
    }
    lockdep_->AbandonThread(report.thread);
  }
  throw OopsException{std::move(report)};
}

void Kernel::BugOn(bool cond, const char* what) {
  if (!cond) {
    return;
  }
  OopsReport report;
  report.kind = OopsKind::kAssert;
  report.title = std::string("kernel BUG at ") + what;
  RaiseOops(std::move(report));
}

long Kernel::Invoke(const SyscallDesc& desc, const std::vector<i64>& args) {
  if (crashed()) {
    return kEIO;
  }
  ThreadId tid = oemu::Runtime::CurrentThreadId();
  if (runtime_ != nullptr) {
    runtime_->OnSyscallEnter(tid);
  }
  long ret;
  try {
    ret = desc.fn(*this, args);
  } catch (const OopsException&) {
    ret = kEFault;
  }
  if (runtime_ != nullptr && !crashed()) {
    // Returning to userspace drains the virtual store buffer (§3.1: the
    // buffer commits on interrupts, and a syscall return is one). A delayed
    // store committing into memory freed meanwhile is itself a detectable
    // OOO bug, so the flush may oops.
    try {
      runtime_->OnSyscallExit(tid);
    } catch (const OopsException&) {
      ret = kEFault;
    }
  }
  return ret;
}

long Kernel::InvokeByName(std::string_view name, const std::vector<i64>& args) {
  const SyscallDesc* desc = table_.Find(name);
  if (desc == nullptr) {
    return kENoEnt;
  }
  return Invoke(*desc, args);
}

i64 Kernel::RegisterResource(const std::string& type, void* obj) {
  std::vector<void*>& v = resources_[type];
  v.push_back(obj);
  return static_cast<i64>(v.size() - 1);
}

void* Kernel::GetResource(const std::string& type, i64 handle) const {
  auto it = resources_.find(type);
  if (it == resources_.end() || handle < 0 ||
      static_cast<std::size_t>(handle) >= it->second.size()) {
    return nullptr;
  }
  return it->second[static_cast<std::size_t>(handle)];
}

std::size_t Kernel::ResourceCount(const std::string& type) const {
  auto it = resources_.find(type);
  return it == resources_.end() ? 0 : it->second.size();
}

void Kernel::Install(std::unique_ptr<Subsystem> subsystem) {
  subsystem->Init(*this);
  subsystems_.push_back(std::move(subsystem));
}

Subsystem* Kernel::Find(std::string_view name) {
  for (auto& s : subsystems_) {
    if (name == s->name()) {
      return s.get();
    }
  }
  return nullptr;
}

std::vector<std::string> Kernel::SubsystemNames() const {
  std::vector<std::string> names;
  names.reserve(subsystems_.size());
  for (const auto& s : subsystems_) {
    names.emplace_back(s->name());
  }
  return names;
}

}  // namespace ozz::osk
