#include "src/osk/oops.h"

namespace ozz::osk {

const char* OopsKindName(OopsKind kind) {
  switch (kind) {
    case OopsKind::kNullDeref:
      return "null-deref";
    case OopsKind::kGeneralProtection:
      return "general-protection";
    case OopsKind::kKasanUaf:
      return "kasan-uaf";
    case OopsKind::kKasanOob:
      return "kasan-oob";
    case OopsKind::kKasanNullPtrWrite:
      return "kasan-null-ptr-write";
    case OopsKind::kDoubleFree:
      return "double-free";
    case OopsKind::kLockdep:
      return "lockdep";
    case OopsKind::kHungTask:
      return "hung-task";
    case OopsKind::kAssert:
      return "assert";
    case OopsKind::kDataCorruption:
      return "data-corruption";
  }
  return "?";
}

}  // namespace ozz::osk
