// Syscall descriptors and dispatch table.
//
// The reproduction's analogue of the Syzlang templates OZZ uses to produce
// *valid* single-threaded inputs (§4.2): each syscall declares typed
// arguments — integer ranges, flag choices, and resources (handles produced
// by earlier syscalls, like a file descriptor from open consumed by write) —
// so the generator can preserve resource dependencies across calls.
#ifndef OZZ_SRC_OSK_SYSCALL_H_
#define OZZ_SRC_OSK_SYSCALL_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/ids.h"

namespace ozz::osk {

class Kernel;

// Errno-style return values (negative on failure, like the kernel ABI).
inline constexpr long kOk = 0;
inline constexpr long kEPerm = -1;
inline constexpr long kENoEnt = -2;
inline constexpr long kEIO = -5;
inline constexpr long kEBadf = -9;
inline constexpr long kEAgain = -11;
inline constexpr long kENoMem = -12;
inline constexpr long kEFault = -14;
inline constexpr long kEBusy = -16;
inline constexpr long kEInval = -22;
inline constexpr long kENotConn = -107;
inline constexpr long kEAlready = -114;

struct ArgDesc {
  enum class Kind : u8 { kIntRange, kFlags, kResource };

  static ArgDesc IntRange(std::string name, i64 min, i64 max) {
    ArgDesc a;
    a.kind = Kind::kIntRange;
    a.name = std::move(name);
    a.min = min;
    a.max = max;
    return a;
  }
  static ArgDesc Flags(std::string name, std::vector<i64> choices) {
    ArgDesc a;
    a.kind = Kind::kFlags;
    a.name = std::move(name);
    a.choices = std::move(choices);
    return a;
  }
  static ArgDesc Resource(std::string name, std::string type) {
    ArgDesc a;
    a.kind = Kind::kResource;
    a.name = std::move(name);
    a.resource = std::move(type);
    return a;
  }

  Kind kind = Kind::kIntRange;
  std::string name;
  i64 min = 0;
  i64 max = 0;
  std::vector<i64> choices;
  std::string resource;
};

struct SyscallDesc {
  std::string name;       // e.g. "tls$setsockopt"
  std::string subsystem;  // owning subsystem, e.g. "tls"
  std::vector<ArgDesc> args;
  // Resource type produced through a non-negative return value ("" = none).
  std::string produces;
  std::function<long(Kernel&, const std::vector<i64>&)> fn;
};

class SyscallTable {
 public:
  void Add(SyscallDesc desc);
  const SyscallDesc* Find(std::string_view name) const;
  const std::vector<SyscallDesc>& all() const { return descs_; }
  std::vector<const SyscallDesc*> InSubsystem(std::string_view subsystem) const;

 private:
  std::vector<SyscallDesc> descs_;
};

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SYSCALL_H_
