#include "src/osk/kalloc.h"

#include <cstring>

#include "src/base/check.h"

namespace ozz::osk {

Kalloc::Kalloc(std::size_t arena_bytes) : arena_(new u8[arena_bytes]) {
  arena_begin_ = reinterpret_cast<uptr>(arena_.get());
  arena_end_ = arena_begin_ + arena_bytes;
  cursor_ = arena_begin_;
  // Pre-poison the arena so redzone reads return recognizable garbage.
  std::memset(arena_.get(), kFreePoison, arena_bytes);
}

void* Kalloc::Alloc(std::size_t size, const char* site, bool zero) {
  OZZ_CHECK(size > 0);
  uptr start = (cursor_ + kRedzone + kAlign - 1) & ~(kAlign - 1);
  uptr end = start + size + kRedzone;
  if (end > arena_end_) {
    return nullptr;
  }
  cursor_ = end;
  Object obj;
  obj.addr = start;
  obj.size = size;
  obj.live = true;
  obj.alloc_site = site;
  objects_[start] = std::move(obj);
  ++live_objects_;
  if (zero) {
    std::memset(reinterpret_cast<void*>(start), 0, size);
  }
  return reinterpret_cast<void*>(start);
}

Kalloc::FreeResult Kalloc::Free(void* ptr, const char* site) {
  uptr addr = reinterpret_cast<uptr>(ptr);
  auto it = objects_.find(addr);
  if (it == objects_.end()) {
    return FreeResult::kInvalid;
  }
  Object& obj = it->second;
  if (!obj.live) {
    return FreeResult::kDoubleFree;
  }
  obj.live = false;
  obj.free_site = site;
  --live_objects_;
  // Quarantine: the range stays tracked (and never reused — the arena is a
  // bump allocator) so later accesses classify as kFreed. Poison the bytes
  // so loads of freed memory yield recognizable values.
  std::memset(ptr, kFreePoison, obj.size);
  return FreeResult::kSuccess;
}

AddrClass Kalloc::Classify(uptr addr, const Object** obj_out) const {
  if (!InArena(addr)) {
    return AddrClass::kUntracked;
  }
  auto it = objects_.upper_bound(addr);
  if (it != objects_.begin()) {
    --it;
    const Object& obj = it->second;
    if (addr >= obj.addr && addr < obj.addr + obj.size) {
      if (obj_out != nullptr) {
        *obj_out = &obj;
      }
      return obj.live ? AddrClass::kValid : AddrClass::kFreed;
    }
  }
  return AddrClass::kRedzone;
}

}  // namespace ozz::osk
