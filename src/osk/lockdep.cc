#include "src/osk/lockdep.h"

#include <algorithm>
#include <sstream>

#include "src/base/check.h"
#include "src/oemu/runtime.h"

namespace ozz::osk {
namespace {

// Mirrors lock transitions into the active runtime's recording so profiled
// traces carry critical-section boundaries (consumed by src/analysis).
void RecordLockEvent(ThreadId thread, LockClassId cls, bool acquire) {
  oemu::Runtime* rt = oemu::Runtime::Active();
  if (rt != nullptr) {
    rt->RecordLock(thread, cls, acquire);
  }
}

}  // namespace
}  // namespace ozz::osk

namespace ozz::osk {

LockClassId Lockdep::RegisterClass(std::string name) {
  class_names_.push_back(std::move(name));
  return static_cast<LockClassId>(class_names_.size() - 1);
}

const std::string& Lockdep::ClassName(LockClassId id) const {
  OZZ_CHECK(id < class_names_.size());
  return class_names_[id];
}

void Lockdep::OnAcquire(ThreadId thread, LockClassId cls) {
  std::vector<LockClassId>& held = held_[thread];
  if (std::find(held.begin(), held.end(), cls) != held.end()) {
    OopsReport report;
    report.kind = OopsKind::kLockdep;
    report.thread = thread;
    report.title = "possible recursive locking detected on " + ClassName(cls);
    raise_(std::move(report));
    return;
  }
  for (LockClassId prior : held) {
    // Edge prior -> cls; a known cls -> prior edge closes a cycle.
    auto it = order_.find(cls);
    if (it != order_.end() && it->second.count(prior) > 0) {
      std::ostringstream title;
      title << "possible circular locking dependency: " << ClassName(prior) << " -> "
            << ClassName(cls);
      OopsReport report;
      report.kind = OopsKind::kLockdep;
      report.thread = thread;
      report.title = title.str();
      raise_(std::move(report));
      return;
    }
    order_[prior].insert(cls);
  }
  held.push_back(cls);
  RecordLockEvent(thread, cls, /*acquire=*/true);
}

void Lockdep::OnRelease(ThreadId thread, LockClassId cls) {
  std::vector<LockClassId>& held = held_[thread];
  auto it = std::find(held.begin(), held.end(), cls);
  if (it != held.end()) {
    held.erase(it);
    RecordLockEvent(thread, cls, /*acquire=*/false);
  }
}

void Lockdep::AbandonThread(ThreadId thread) { held_.erase(thread); }

bool Lockdep::Holding(ThreadId thread, LockClassId cls) const {
  auto it = held_.find(thread);
  if (it == held_.end()) {
    return false;
  }
  return std::find(it->second.begin(), it->second.end(), cls) != it->second.end();
}

}  // namespace ozz::osk
