#include "src/osk/kasan.h"

#include <sstream>
#include <vector>

#include "src/oemu/instr.h"

namespace ozz::osk {
namespace {

constexpr uptr kNullPageLimit = 4096;

thread_local std::vector<const char*> tls_fn_stack;

bool LooksPoisoned(uptr ptr) {
  // A pointer read out of kFreePoison-filled memory.
  return ptr == static_cast<uptr>(kPoisonPointer) ||
         (ptr & 0xffffffffull) == 0x6b6b6b6bull;
}

}  // namespace

FunctionContext::FunctionContext(const char* name) { tls_fn_stack.push_back(name); }

FunctionContext::~FunctionContext() { tls_fn_stack.pop_back(); }

const char* FunctionContext::Current() {
  return tls_fn_stack.empty() ? nullptr : tls_fn_stack.back();
}

void Kasan::Check(uptr addr, u32 size, oemu::AccessType type, InstrId instr,
                  oemu::Runtime::CheckPhase phase) {
  const Kalloc::Object* obj = nullptr;
  AddrClass cls = alloc_->Classify(addr, &obj);
  if (cls == AddrClass::kUntracked || cls == AddrClass::kValid) {
    // Check the last byte too: an access straddling the object end is OOB.
    if (cls == AddrClass::kValid && size > 1) {
      AddrClass end_cls = alloc_->Classify(addr + size - 1);
      if (end_cls == AddrClass::kValid || end_cls == AddrClass::kUntracked) {
        return;
      }
      cls = end_cls;
    } else {
      return;
    }
  }

  const char* rw = type == oemu::AccessType::kStore ? "Write" : "Read";
  const char* fn = FunctionContext::Current();
  std::ostringstream where;
  if (fn != nullptr) {
    where << "in " << fn;
  } else {
    where << "at " << oemu::InstrRegistry::Describe(instr);
  }
  std::ostringstream title;
  std::ostringstream detail;
  OopsReport report;
  report.instr = instr;
  report.addr = addr;
  if (cls == AddrClass::kFreed) {
    report.kind = OopsKind::kKasanUaf;
    title << "KASAN: slab-use-after-free " << rw << " " << where.str();
    detail << "object allocated at " << (obj != nullptr ? obj->alloc_site : "?") << ", freed at "
           << (obj != nullptr ? obj->free_site : "?");
    if (phase == oemu::Runtime::CheckPhase::kCommit) {
      detail << "; delayed store committed after the object was freed";
    }
  } else {
    report.kind = OopsKind::kKasanOob;
    title << "KASAN: slab-out-of-bounds " << rw << " " << where.str();
    detail << "access of size " << size << " outside any live object";
  }
  report.title = title.str();
  report.detail = detail.str();
  raise_(std::move(report));
}

void Kasan::CheckPointerWrite(uptr ptr, const char* context) {
  if (ptr < kNullPageLimit) {
    OopsReport report;
    report.addr = ptr;
    report.kind = OopsKind::kKasanNullPtrWrite;
    report.title = std::string("KASAN: null-ptr-deref Write in ") + context;
    report.detail = "write through a null pointer";
    raise_(std::move(report));
    return;
  }
  CheckPointer(ptr, context);
}

void Kasan::CheckPointer(uptr ptr, const char* context) {
  if (ptr >= kNullPageLimit && !LooksPoisoned(ptr)) {
    const Kalloc::Object* obj = nullptr;
    if (alloc_->Classify(ptr, &obj) == AddrClass::kFreed) {
      OopsReport report;
      report.kind = OopsKind::kKasanUaf;
      report.addr = ptr;
      report.title = std::string("KASAN: slab-use-after-free Read in ") + context;
      report.detail = std::string("pointer into freed object; allocated at ") +
                      (obj != nullptr ? obj->alloc_site : "?");
      raise_(std::move(report));
    }
    return;
  }
  OopsReport report;
  report.addr = ptr;
  if (ptr < kNullPageLimit) {
    report.kind = OopsKind::kNullDeref;
    report.title =
        std::string("BUG: unable to handle kernel NULL pointer dereference in ") + context;
    report.detail = "dereference of a null (or null-page) pointer";
  } else {
    report.kind = OopsKind::kGeneralProtection;
    report.title = std::string("general protection fault in ") + context;
    report.detail = "dereference of a poisoned pointer (use-after-free pattern)";
  }
  raise_(std::move(report));
}

}  // namespace ozz::osk
