// Per-CPU variables.
//
// PerCpu<T> keeps one slot per simulated CPU. this_cpu() resolves through the
// CPU the calling simulated thread is pinned to. The MQ/sbitmap bug of
// Table 4 (#6) depends on *thread migration* — two threads resolving the same
// slot and then running on different CPUs — which OZZ's pinned threads cannot
// produce (§6.2); KernelConfig::percpu_migration_hack reproduces the paper's
// manual verification by forcing every thread onto slot 0.
#ifndef OZZ_SRC_OSK_PERCPU_H_
#define OZZ_SRC_OSK_PERCPU_H_

#include <array>

#include "src/oemu/cell.h"
#include "src/rt/machine.h"

namespace ozz::osk {

inline constexpr int kMaxCpus = 8;

inline CpuId CurrentCpu() {
  rt::SimThread* t = rt::Machine::CurrentThread();
  return t != nullptr ? t->cpu() : 0;
}

template <typename T>
class PerCpu {
 public:
  oemu::Cell<T>& on_cpu(CpuId cpu) { return slots_[static_cast<std::size_t>(cpu) % kMaxCpus]; }
  const oemu::Cell<T>& on_cpu(CpuId cpu) const {
    return slots_[static_cast<std::size_t>(cpu) % kMaxCpus];
  }

  // Slot of the calling thread's CPU; `force_cpu0` models a thread that
  // resolved the slot address before being migrated (§6.2 manual check).
  oemu::Cell<T>& this_cpu(bool force_cpu0 = false) {
    return on_cpu(force_cpu0 ? 0 : CurrentCpu());
  }

 private:
  std::array<oemu::Cell<T>, kMaxCpus> slots_{};
};

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_PERCPU_H_
