#ifndef OZZ_SRC_OSK_SUBSYS_SEQLOCK_H_
#define OZZ_SRC_OSK_SUBSYS_SEQLOCK_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// A seqlock in the include/linux/seqlock.h sense: writers serialize on a real
// spinlock and bump the sequence around a two-word update; readers take no
// lock at all and validate the sequence before and after. The spinlock makes
// the writer-side store pairs *locked* for the static race analyzer — but the
// lock orders nothing against the lockless reader, so with the write_seqcount
// barriers missing, delayed data stores can drain after the even sequence
// and a reader that passes both checks still returns a torn pair
// (data2 != data1 + 1). Fixed key: "seqlock".
std::unique_ptr<Subsystem> MakeSeqlockSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_SEQLOCK_H_
