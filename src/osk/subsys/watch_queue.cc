// watch_queue / pipe subsystem — the paper's running example (Figure 1).
//
// post_one_notification() initializes a ring-buffer entry and bumps `head`;
// pipe_read() consumes entries while head > tail. Two barriers are required:
//   (wmb) the entry must be fully initialized before the bumped head is
//         visible (store side), and
//   (rmb) the reader must not speculatively load the entry before checking
//         head (load side).
// The buggy form omits both. KernelConfig::fixed keys:
//   "watch_queue"      — both barriers applied
//   "watch_queue.wmb"  — only the writer barrier
//   "watch_queue.rmb"  — only the reader barrier
#include "src/osk/subsys/watch_queue.h"

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

constexpr u32 kRingSize = 8;

struct PipeBufOps {
  // Returns the confirmed length; the bug fires before we get here when the
  // ops pointer itself is garbage.
  u32 (*confirm)(u32 len);
};

u32 WqPipeConfirm(u32 len) { return len; }

const PipeBufOps kWqPipeOps{&WqPipeConfirm};

struct PipeBuffer {
  oemu::Cell<u32> len;
  oemu::Cell<const PipeBufOps*> ops;
};

struct Pipe {
  oemu::Cell<u32> head;
  oemu::Cell<u32> tail;
  PipeBuffer bufs[kRingSize];
};

}  // namespace

class WatchQueueSubsystem : public Subsystem {
 public:
  const char* name() const override { return "watch_queue"; }

  void Init(Kernel& kernel) override {
    pipe_ = kernel.New<Pipe>("watch_queue_init");
    fix_wmb_ = kernel.IsFixed("watch_queue") || kernel.IsFixed("watch_queue.wmb");
    fix_rmb_ = kernel.IsFixed("watch_queue") || kernel.IsFixed("watch_queue.rmb");

    SyscallDesc post;
    post.name = "wq$post";
    post.subsystem = name();
    post.args.push_back(ArgDesc::IntRange("len", 1, 64));
    post.fn = [this](Kernel& k, const std::vector<i64>& args) {
      return PostOneNotification(k, static_cast<u32>(args[0]));
    };
    kernel.table().Add(std::move(post));

    SyscallDesc read;
    read.name = "wq$read";
    read.subsystem = name();
    read.fn = [this](Kernel& k, const std::vector<i64>&) { return PipeRead(k); };
    kernel.table().Add(std::move(read));
  }

  // kernel/watch_queue.c: post_one_notification()
  long PostOneNotification(Kernel& k, u32 len) {
    u32 head = OSK_LOAD(pipe_->head);
    u32 tail = OSK_LOAD(pipe_->tail);
    if (head - tail >= kRingSize) {
      return kEAgain;  // ring full
    }
    PipeBuffer& buf = pipe_->bufs[head % kRingSize];
    OSK_STORE(buf.len, len);
    OSK_STORE(buf.ops, &kWqPipeOps);
    if (fix_wmb_) {
      OSK_SMP_WMB();  // Fig. 1 line 7: initialization completes before head
    }
    OSK_STORE(pipe_->head, head + 1);
    (void)k;
    return kOk;
  }

  // fs/pipe.c: pipe_read()
  long PipeRead(Kernel& k) {
    u32 head = OSK_LOAD(pipe_->head);
    u32 tail = OSK_LOAD(pipe_->tail);
    if (head <= tail) {
      return kEAgain;  // nothing to read
    }
    if (fix_rmb_) {
      OSK_SMP_RMB();  // Fig. 1 line 15: no speculative entry loads
    }
    PipeBuffer& buf = pipe_->bufs[tail % kRingSize];
    u32 len = OSK_LOAD(buf.len);
    const PipeBufOps* ops = OSK_LOAD(buf.ops);
    k.Deref(ops, "pipe_read");  // Fig. 1 line 18: buf->ops->confirm()
    u32 confirmed = ops->confirm(len);
    OSK_STORE(pipe_->tail, tail + 1);
    return static_cast<long>(confirmed);
  }

 private:
  Pipe* pipe_ = nullptr;
  bool fix_wmb_ = false;
  bool fix_rmb_ = false;
};

std::unique_ptr<Subsystem> MakeWatchQueueSubsystem() {
  return std::make_unique<WatchQueueSubsystem>();
}

}  // namespace ozz::osk
