// net/smc subsystem (Table 3 Bugs #8 and #10).
#include "src/osk/subsys/smc.h"

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

enum SmcState : u32 { kSmcInit = 0, kSmcListen = 1 };

struct ClcSock {
  oemu::Cell<u32> connected;
};

struct File {
  oemu::Cell<u64> f_count;
};

struct SmcSock {
  oemu::Cell<u32> state;
  oemu::Cell<ClcSock*> clcsock;
  oemu::Cell<File*> file;
};

}  // namespace

class SmcSubsystem : public Subsystem {
 public:
  const char* name() const override { return "smc"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("smc");
    smc_ = kernel.New<SmcSock>("smc_sock_init");

    SyscallDesc listen;
    listen.name = "smc$listen";
    listen.subsystem = name();
    listen.fn = [this](Kernel& k, const std::vector<i64>&) { return Listen(k); };
    kernel.table().Add(std::move(listen));

    SyscallDesc connect;
    connect.name = "smc$connect";
    connect.subsystem = name();
    connect.fn = [this](Kernel& k, const std::vector<i64>&) { return Connect(k); };
    kernel.table().Add(std::move(connect));

    SyscallDesc close;
    close.name = "smc$close";
    close.subsystem = name();
    close.fn = [this](Kernel& k, const std::vector<i64>&) { return Close(k); };
    kernel.table().Add(std::move(close));
  }

  // net/smc/af_smc.c: smc_listen() — allocates the internal TCP socket and
  // the backing file, then moves the socket to LISTEN.
  long Listen(Kernel& k) {
    if (OSK_READ_ONCE(smc_->state) == kSmcListen) {
      return kEAlready;
    }
    // Allocate first (kmalloc fences the store buffer), then publish.
    ClcSock* clc = k.New<ClcSock>("smc_listen_clc");
    File* file = k.New<File>("smc_listen_file");
    OSK_STORE(smc_->clcsock, clc);
    OSK_STORE(smc_->file, file);
    if (fixed_) {
      OSK_SMP_WMB();
    }
    OSK_WRITE_ONCE(smc_->state, kSmcListen);
    return kOk;
  }

  // net/smc/af_smc.c: smc_connect() (Bug #8): trusts the LISTEN state and
  // dereferences clcsock.
  long Connect(Kernel& k) {
    if (OSK_READ_ONCE(smc_->state) != kSmcListen) {
      return kEInval;
    }
    ClcSock* clc = OSK_LOAD(smc_->clcsock);
    k.Deref(clc, "connect");
    OSK_STORE(clc->connected, 1);
    return kOk;
  }

  // net/smc/af_smc.c: smc_close_active() -> fput() (Bug #10): drops the file
  // reference — a *write* through the unpublished file pointer.
  long Close(Kernel& k) {
    if (OSK_READ_ONCE(smc_->state) != kSmcListen) {
      return 0;
    }
    File* f = OSK_LOAD(smc_->file);
    k.DerefWrite(f, "fput");
    u64 count = OSK_LOAD(f->f_count);
    OSK_STORE(f->f_count, count + 1);
    return kOk;
  }

 private:
  SmcSock* smc_ = nullptr;
  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeSmcSubsystem() { return std::make_unique<SmcSubsystem>(); }

}  // namespace ozz::osk
