#ifndef OZZ_SRC_OSK_SUBSYS_BUFFER_HEAD_H_
#define OZZ_SRC_OSK_SUBSYS_BUFFER_HEAD_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// fs/buffer ([82] in the paper — Piggin's 2007 "buffer: memorder fix"):
// unlock_buffer() finalizes the buffer head and clears its lock bit with no
// release ordering; a concurrent try_to_free_buffers() observes the clear
// and frees the buffer while the finalizing store is still in the unlocking
// CPU's store buffer. The delayed store then commits into freed memory —
// exactly the use-after-free class the paper says in-vitro approaches miss
// and OEMU's in-vivo commit-time oracle catches (§3, "Benefits of in-vivo
// emulation"). Fixed key: "buffer" (release ordering on the unlock).
std::unique_ptr<Subsystem> MakeBufferHeadSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_BUFFER_HEAD_H_
