#ifndef OZZ_SRC_OSK_SUBSYS_MQ_SBITMAP_H_
#define OZZ_SRC_OSK_SUBSYS_MQ_SBITMAP_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// block/blk-mq + lib/sbitmap (Table 4 #6, "sbitmap: order READ/WRITE freed
// instance and setting clear bit"): completing a request frees it and clears
// the per-CPU tag busy flag with a plain store; the freed-instance stores can
// be reordered past the flag clear, so the next allocator on that tag sees a
// stale request pointer.
//
// The bug lives on a *per-CPU* tag cache: two threads only collide after one
// resolved the slot address and migrated — which OZZ's pinned threads never
// do, so OZZ cannot reproduce it (§6.2). KernelConfig::percpu_migration_hack
// forces slot 0 for everyone, reproducing the paper's manual verification.
// Fixed key: "mq" (release ordering on the flag clear).
std::unique_ptr<Subsystem> MakeMqSbitmapSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_MQ_SBITMAP_H_
