#ifndef OZZ_SRC_OSK_SUBSYS_FS_FDTABLE_H_
#define OZZ_SRC_OSK_SUBSYS_FS_FDTABLE_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// fs/file.c: __fget_light() loads the fd-table slot with a plain load; the
// dependent loads of the file's fields (f_op, f_mode) can be reordered before
// it and observe the file's pre-initialization contents — Table 4 #5
// ("fs: use acquire ordering in __fget_light()", L-L).
// Fixed key: "fs" (reader uses smp_load_acquire).
std::unique_ptr<Subsystem> MakeFsFdtableSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_FS_FDTABLE_H_
