#ifndef OZZ_SRC_OSK_SUBSYS_RDS_H_
#define OZZ_SRC_OSK_SUBSYS_RDS_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// net/rds (paper Figure 8, Table 3 Bug #1): a hand-rolled try-lock built on
// atomic bitops. release_in_xmit() uses clear_bit(), which has no ordering,
// so stores inside the critical section can be reordered past the unlock and
// the next lock holder observes a half-updated message — a slab-out-of-bounds
// read in rds_loop_xmit. Fixed form uses clear_bit_unlock(). Fixed key: "rds".
std::unique_ptr<Subsystem> MakeRdsSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_RDS_H_
