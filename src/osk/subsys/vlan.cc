// 802.1q VLAN subsystem (Table 4 #1).
#include "src/osk/subsys/vlan.h"

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

constexpr u32 kMaxVlans = 8;

struct NetDevice {
  oemu::Cell<u32> ifindex;
  oemu::Cell<u64> tx_packets;
};

struct VlanGroup {
  oemu::Cell<NetDevice*> vlan_devices[kMaxVlans];
  oemu::Cell<u32> nr_vlan_devs;
};

}  // namespace

class VlanSubsystem : public Subsystem {
 public:
  const char* name() const override { return "vlan"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("vlan");
    grp_ = kernel.New<VlanGroup>("vlan_group_init");

    SyscallDesc add;
    add.name = "vlan$add";
    add.subsystem = name();
    add.fn = [this](Kernel& k, const std::vector<i64>&) { return AddDevice(k); };
    kernel.table().Add(std::move(add));

    SyscallDesc get;
    get.name = "vlan$get";
    get.subsystem = name();
    get.args.push_back(ArgDesc::IntRange("idx", 0, kMaxVlans - 1));
    get.fn = [this](Kernel& k, const std::vector<i64>& args) {
      return GetDevice(k, static_cast<u32>(args[0]));
    };
    kernel.table().Add(std::move(get));
  }

  // net/8021q/vlan.c: register_vlan_dev() -> vlan_group_set_device().
  long AddDevice(Kernel& k) {
    // ozz-lint: allow-mixed — single registrar; the count is only grown by this function
    u32 n = OSK_LOAD(grp_->nr_vlan_devs);
    if (n >= kMaxVlans) {
      return kENoMem;
    }
    NetDevice* dev = k.New<NetDevice>("vlan_add");
    OSK_STORE(dev->ifindex, n + 100);
    OSK_STORE(grp_->vlan_devices[n], dev);
    if (fixed_) {
      OSK_SMP_WMB();
    }
    // ozz-lint: allow-mixed — plain count publish is the modelled pre-patch 8021q code
    OSK_STORE(grp_->nr_vlan_devs, n + 1);
    return static_cast<long>(n);
  }

  // net/8021q/vlan_core.c: vlan_group_get_device() — trusts nr_vlan_devs.
  // The patch annotates both sides (WRITE_ONCE/READ_ONCE + barriers): the
  // annotated count read also pins the dependent slot load (Case 6).
  long GetDevice(Kernel& k, u32 idx) {
    // ozz-lint: allow-mixed — the buggy form's plain count load IS the planted bug's surface
    u32 n = fixed_ ? OSK_READ_ONCE(grp_->nr_vlan_devs) : OSK_LOAD(grp_->nr_vlan_devs);
    if (idx >= n) {
      return kENoEnt;
    }
    NetDevice* dev = OSK_LOAD(grp_->vlan_devices[idx]);
    k.Deref(dev, "vlan_group_get_device");
    u64 tx = OSK_LOAD(dev->tx_packets);
    OSK_STORE(dev->tx_packets, tx + 1);
    return static_cast<long>(OSK_LOAD(dev->ifindex));
  }

 private:
  VlanGroup* grp_ = nullptr;
  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeVlanSubsystem() { return std::make_unique<VlanSubsystem>(); }

}  // namespace ozz::osk
