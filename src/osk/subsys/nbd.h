#ifndef OZZ_SRC_OSK_SUBSYS_NBD_H_
#define OZZ_SRC_OSK_SUBSYS_NBD_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// drivers/block/nbd: nbd_ioctl checks config_refs and then loads
// nbd->config; without a read barrier the dependent config load can be
// satisfied with the stale (null) value — Table 4 #7 ("fix
// null-ptr-dereference while accessing 'nbd->config'", L-L).
// Fixed key: "nbd" (reader gains the read barrier).
std::unique_ptr<Subsystem> MakeNbdSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_NBD_H_
