#ifndef OZZ_SRC_OSK_SUBSYS_WATCH_QUEUE_H_
#define OZZ_SRC_OSK_SUBSYS_WATCH_QUEUE_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// Figure 1: the watch_queue/pipe ring-buffer OOO bug (store- and load-side).
std::unique_ptr<Subsystem> MakeWatchQueueSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_WATCH_QUEUE_H_
