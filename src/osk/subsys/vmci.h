#ifndef OZZ_SRC_OSK_SUBSYS_VMCI_H_
#define OZZ_SRC_OSK_SUBSYS_VMCI_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// drivers/misc/vmw_vmci: queue-pair attach publishes the attached flag while
// the wait-queue pointer store is still in the store buffer. Because the
// qpair is allocated without __GFP_ZERO, the reader dereferences
// *uninitialized* memory — a general protection fault in add_wait_queue
// (Table 3 Bug #3). Fixed key: "vmci".
std::unique_ptr<Subsystem> MakeVmciSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_VMCI_H_
