// irdma-style completion-queue subsystem (paper §4.5).
#include "src/osk/subsys/rdma.h"

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

constexpr u32 kCqSize = 4;

struct Cqe {
  oemu::Cell<u32> valid;   // written LAST by the device
  oemu::Cell<u64> wr_id;   // payload: which work request completed
  oemu::Cell<u32> status;  // payload: completion status (never 0 when valid)
};

struct CompletionQueue {
  Cqe ring[kCqSize];
  oemu::Cell<u32> hw_head;  // device producer index
  oemu::Cell<u32> sw_tail;  // driver consumer index
};

}  // namespace

class RdmaSubsystem : public Subsystem {
 public:
  const char* name() const override { return "rdma"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("rdma");
    cq_ = kernel.New<CompletionQueue>("rdma_cq_init");

    SyscallDesc dma;
    dma.name = "rdma$hw_complete";
    dma.subsystem = name();
    dma.args.push_back(ArgDesc::IntRange("wr_id", 1, 1 << 16));
    dma.fn = [this](Kernel& k, const std::vector<i64>& args) {
      return HwComplete(k, static_cast<u64>(args[0]));
    };
    kernel.table().Add(std::move(dma));

    SyscallDesc poll;
    poll.name = "rdma$poll_cq";
    poll.subsystem = name();
    poll.fn = [this](Kernel& k, const std::vector<i64>&) { return PollCq(k); };
    kernel.table().Add(std::move(poll));
  }

  // The device's DMA engine: writes the CQE payload, then sets the valid
  // bit. Hardware orders these correctly (the device's write combining
  // preserves the valid-last contract), so the write side carries a barrier
  // even in the buggy form — the bug is in the driver.
  long HwComplete(Kernel& k, u64 wr_id) {
    u32 head = OSK_LOAD(cq_->hw_head);
    u32 tail = OSK_LOAD(cq_->sw_tail);
    if (head - tail >= kCqSize) {
      return kEAgain;  // CQ full
    }
    Cqe& cqe = cq_->ring[head % kCqSize];
    OSK_STORE(cqe.wr_id, wr_id);
    OSK_STORE(cqe.status, 1);
    OSK_SMP_WMB();  // device contract: payload lands before valid
    OSK_STORE(cqe.valid, 1);
    OSK_STORE(cq_->hw_head, head + 1);
    (void)k;
    return kOk;
  }

  // irdma_poll_cq(): checks the valid bit, then reads the payload. The buggy
  // form has no read barrier between the two device-written loads — the
  // missing-read-barriers patch of §4.5.
  long PollCq(Kernel& k) {
    u32 tail = OSK_LOAD(cq_->sw_tail);
    Cqe& cqe = cq_->ring[tail % kCqSize];
    if (OSK_LOAD(cqe.valid) == 0) {
      return kEAgain;  // nothing completed
    }
    if (fixed_) {
      OSK_SMP_RMB();  // the patch: order the valid check before payload loads
    }
    u32 status = OSK_LOAD(cqe.status);
    u64 wr_id = OSK_LOAD(cqe.wr_id);
    // A valid CQE always carries a non-zero status; observing zero means the
    // payload load was satisfied before the valid check.
    k.BugOn(status == 0, "irdma_poll_cq: valid CQE with stale payload");
    OSK_STORE(cqe.valid, 0);
    OSK_STORE(cq_->sw_tail, tail + 1);
    return static_cast<long>(wr_id);
  }

 private:
  CompletionQueue* cq_ = nullptr;
  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeRdmaSubsystem() { return std::make_unique<RdmaSubsystem>(); }

}  // namespace ozz::osk
