// net/xdp subsystem (Table 3 Bugs #4/#7; Table 4 #3/#4).
#include "src/osk/subsys/xsk.h"

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

enum XskState : u32 { kXskUnbound = 0, kXskBound = 1 };

struct XskRing {
  oemu::Cell<u32> producer;
  oemu::Cell<u32> consumer;
  oemu::Cell<u32> size;
};

struct XdpSock {
  oemu::Cell<u32> state;
  oemu::Cell<XskRing*> rx;
  oemu::Cell<XskRing*> tx;
};

}  // namespace

class XskSubsystem : public Subsystem {
 public:
  const char* name() const override { return "xsk"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("xsk");

    SyscallDesc create;
    create.name = "xsk$socket";
    create.subsystem = name();
    create.produces = "xsk_sock";
    create.fn = [](Kernel& k, const std::vector<i64>&) {
      XdpSock* xs = k.New<XdpSock>("xsk_socket");
      return static_cast<long>(k.RegisterResource("xsk_sock", xs));
    };
    kernel.table().Add(std::move(create));

    SyscallDesc bind;
    bind.name = "xsk$bind";
    bind.subsystem = name();
    bind.args.push_back(ArgDesc::Resource("fd", "xsk_sock"));
    bind.args.push_back(ArgDesc::Flags("ring_size", {64, 128, 256}));
    bind.fn = [this](Kernel& k, const std::vector<i64>& args) {
      XdpSock* xs = Lookup(k, args[0]);
      return xs == nullptr ? kEBadf : Bind(k, xs, static_cast<u32>(args[1]));
    };
    kernel.table().Add(std::move(bind));

    SyscallDesc poll;
    poll.name = "xsk$poll";
    poll.subsystem = name();
    poll.args.push_back(ArgDesc::Resource("fd", "xsk_sock"));
    poll.fn = [](Kernel& k, const std::vector<i64>& args) {
      XdpSock* xs = Lookup(k, args[0]);
      return xs == nullptr ? kEBadf : Poll(k, xs);
    };
    kernel.table().Add(std::move(poll));

    SyscallDesc sendmsg;
    sendmsg.name = "xsk$sendmsg";
    sendmsg.subsystem = name();
    sendmsg.args.push_back(ArgDesc::Resource("fd", "xsk_sock"));
    sendmsg.fn = [this](Kernel& k, const std::vector<i64>& args) {
      XdpSock* xs = Lookup(k, args[0]);
      return xs == nullptr ? kEBadf : GenericXmit(k, xs);
    };
    kernel.table().Add(std::move(sendmsg));
  }

  // net/xdp/xsk.c: xsk_bind() — sets up the rings, then publishes the bound
  // state. Without the write barrier the state flag can become visible while
  // the ring pointers are still in the store buffer.
  long Bind(Kernel& k, XdpSock* xs, u32 ring_size) {
    if (OSK_READ_ONCE(xs->state) == kXskBound) {
      return kEAlready;
    }
    XskRing* rx = k.New<XskRing>("xsk_bind_rx");
    // ozz-lint: allow-raw — ring construction, published below via OSK_STORE
    rx->size.set_raw(ring_size);
    XskRing* tx = k.New<XskRing>("xsk_bind_tx");
    // ozz-lint: allow-raw — ring construction, published below via OSK_STORE
    tx->size.set_raw(ring_size);
    OSK_STORE(xs->rx, rx);
    OSK_STORE(xs->tx, tx);
    if (fixed_) {
      OSK_SMP_WMB();  // Table 4 #4: use state member for socket synchronization
    }
    OSK_WRITE_ONCE(xs->state, kXskBound);
    return kOk;
  }

  // net/xdp/xsk.c: xsk_poll() (Bug #4).
  static long Poll(Kernel& k, XdpSock* xs) {
    if (OSK_READ_ONCE(xs->state) != kXskBound) {
      return 0;
    }
    XskRing* rx = OSK_LOAD(xs->rx);
    k.Deref(rx, "xsk_poll");
    u32 avail = OSK_LOAD(rx->producer) - OSK_LOAD(rx->consumer);
    return static_cast<long>(avail);
  }

  // net/xdp/xsk.c: xsk_generic_xmit() (Bug #7). The buggy reader uses a
  // plain state load, so its dependent ring load can also be reordered; the
  // patch annotates the state check (Case 6 then pins the ring load).
  long GenericXmit(Kernel& k, XdpSock* xs) {
    // ozz-lint: allow-mixed — the buggy form's plain state load IS the planted bug's surface
    u32 state = fixed_ ? OSK_READ_ONCE(xs->state) : OSK_LOAD(xs->state);
    if (state != kXskBound) {
      return kENotConn;
    }
    XskRing* tx = OSK_LOAD(xs->tx);
    k.Deref(tx, "xsk_generic_xmit");
    u32 prod = OSK_LOAD(tx->producer);
    OSK_STORE(tx->producer, prod + 1);
    return kOk;
  }

 private:
  static XdpSock* Lookup(Kernel& k, i64 handle) {
    return static_cast<XdpSock*>(k.GetResource("xsk_sock", handle));
  }

  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeXskSubsystem() { return std::make_unique<XskSubsystem>(); }

}  // namespace ozz::osk
