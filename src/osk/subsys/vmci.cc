// VMCI queue-pair subsystem (Table 3 Bug #3).
#include "src/osk/subsys/vmci.h"

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

struct WaitQueue {
  oemu::Cell<u32> waiters;
};

// Allocated *uninitialized* (like a plain kmalloc): fields read back as the
// arena poison pattern until explicitly stored.
struct QPair {
  oemu::Cell<WaitQueue*> wq;
  oemu::Cell<u32> produce_size;
};

}  // namespace

class VmciSubsystem : public Subsystem {
 public:
  const char* name() const override { return "vmci"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("vmci");
    state_ = kernel.New<State>("vmci_init");
    // The qpair structure itself exists from device registration; attach
    // only initializes its fields. It is a plain kmalloc — uninitialized
    // fields read back as poison until the attach stores commit.
    // ozz-lint: allow-raw — subsystem init, before any simulated thread runs
    state_->qpair.set_raw(
        static_cast<QPair*>(kernel.KmAllocUninit(sizeof(QPair), "vmci_qp_alloc")));

    SyscallDesc attach;
    attach.name = "vmci$qp_attach";
    attach.subsystem = name();
    attach.args.push_back(ArgDesc::Flags("size", {256, 512}));
    attach.fn = [this](Kernel& k, const std::vector<i64>& args) {
      return Attach(k, static_cast<u32>(args[0]));
    };
    kernel.table().Add(std::move(attach));

    SyscallDesc poll;
    poll.name = "vmci$qp_poll";
    poll.subsystem = name();
    poll.fn = [this](Kernel& k, const std::vector<i64>&) { return Poll(k); };
    kernel.table().Add(std::move(poll));
  }

  // vmci_qp_attach(): initialize the qpair's fields, then publish the
  // attached flag. Without the write barrier the flag can become visible
  // while the field stores are still buffered — and the fields are
  // uninitialized (poison), not zero.
  long Attach(Kernel& k, u32 size) {
    if (OSK_READ_ONCE(state_->attached) != 0) {
      return kEAlready;
    }
    // ozz-lint: allow-raw — device-lifetime pointer, set once at init
    QPair* qp = state_->qpair.raw();
    WaitQueue* wq = k.New<WaitQueue>("vmci_wq_alloc");
    OSK_STORE(qp->wq, wq);
    OSK_STORE(qp->produce_size, size);
    if (fixed_) {
      OSK_SMP_WMB();
    }
    OSK_WRITE_ONCE(state_->attached, 1);
    return kOk;
  }

  // vmci_qpair poll path: waits on the queue-pair's wait queue. With the
  // init stores reordered past the attached flag, qp->wq is uninitialized
  // garbage and add_wait_queue faults.
  long Poll(Kernel& k) {
    if (OSK_READ_ONCE(state_->attached) == 0) {
      return 0;
    }
    QPair* qp = state_->qpair.raw();  // ozz-lint: allow-raw — device-lifetime pointer, never racy
    WaitQueue* wq = OSK_LOAD(qp->wq);
    k.Deref(wq, "add_wait_queue");
    u32 w = OSK_LOAD(wq->waiters);
    OSK_STORE(wq->waiters, w + 1);
    return kOk;
  }

 private:
  struct State {
    oemu::Cell<QPair*> qpair;
    oemu::Cell<u32> attached;
  };

  State* state_ = nullptr;
  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeVmciSubsystem() { return std::make_unique<VmciSubsystem>(); }

}  // namespace ozz::osk
