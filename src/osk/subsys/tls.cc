// net/tls subsystem (paper Figure 7, Table 3 Bugs #5/#9, Table 4 #8).
#include "src/osk/subsys/tls.h"

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

struct Sock;

// struct proto: the per-protocol function-pointer table swapped by tls_init.
struct Proto {
  long (*setsockopt)(Kernel&, Sock*, i64 val);
  long (*getsockopt)(Kernel&, Sock*, i64 opt);
};

struct TlsContext {
  oemu::Cell<const Proto*> sk_proto;  // saved base protocol (Fig. 7 line 6)
  oemu::Cell<i64> opt_value;
};

struct Sock {
  oemu::Cell<const Proto*> sk_prot;   // Fig. 7 line 9 / 20
  oemu::Cell<TlsContext*> sk_user_data;  // Fig. 7: sk->data
  // tls_err_abort state (Table 4 #8).
  oemu::Cell<i32> sk_err;
  oemu::Cell<u32> strp_stopped;
  oemu::Cell<u64> err_anomalies;  // wrong-value observations (not a crash)
};

long BaseSetsockopt(Kernel&, Sock* sk, i64 val) {
  (void)sk;
  (void)val;
  return kOk;
}

long BaseGetsockopt(Kernel&, Sock*, i64) { return 0; }

const Proto kBaseProto{&BaseSetsockopt, &BaseGetsockopt};

long TlsSetsockopt(Kernel& k, Sock* sk, i64 val);
long TlsGetsockopt(Kernel& k, Sock* sk, i64 opt);

const Proto kTlsProto{&TlsSetsockopt, &TlsGetsockopt};

// net/tls/tls_main.c: tls_setsockopt() (Fig. 7 lines 25-30)
long TlsSetsockopt(Kernel& k, Sock* sk, i64 val) {
  TlsContext* ctx = OSK_LOAD(sk->sk_user_data);
  k.Deref(ctx, "tls_setsockopt");
  const Proto* sp = OSK_LOAD(ctx->sk_proto);
  k.Deref(sp, "tls_setsockopt");
  OSK_STORE(ctx->opt_value, val);
  return sp->setsockopt(k, sk, val);
}

long TlsGetsockopt(Kernel& k, Sock* sk, i64 opt) {
  TlsContext* ctx = OSK_LOAD(sk->sk_user_data);
  k.Deref(ctx, "tls_getsockopt");
  const Proto* sp = OSK_LOAD(ctx->sk_proto);
  k.Deref(sp, "tls_getsockopt");
  return sp->getsockopt(k, sk, opt);
}

}  // namespace

class TlsSubsystem : public Subsystem {
 public:
  const char* name() const override { return "tls"; }

  void Init(Kernel& kernel) override {
    fix_init_wmb_ = kernel.IsFixed("tls") || kernel.IsFixed("tls.init_wmb");
    fix_err_abort_ = kernel.IsFixed("tls") || kernel.IsFixed("tls.err_abort");

    SyscallDesc open;
    open.name = "tls$open";
    open.subsystem = name();
    open.produces = "tls_sock";
    open.fn = [](Kernel& k, const std::vector<i64>&) {
      Sock* sk = k.New<Sock>("tls_open");
      // ozz-lint: allow-raw — socket construction, not yet published
      sk->sk_prot.set_raw(&kBaseProto);
      return static_cast<long>(k.RegisterResource("tls_sock", sk));
    };
    kernel.table().Add(std::move(open));

    SyscallDesc init;
    init.name = "tls$init";
    init.subsystem = name();
    init.args.push_back(ArgDesc::Resource("fd", "tls_sock"));
    init.fn = [this](Kernel& k, const std::vector<i64>& args) {
      Sock* sk = Lookup(k, args[0]);
      return sk == nullptr ? kEBadf : TlsInit(k, sk);
    };
    kernel.table().Add(std::move(init));

    SyscallDesc setsockopt;
    setsockopt.name = "tls$setsockopt";
    setsockopt.subsystem = name();
    setsockopt.args.push_back(ArgDesc::Resource("fd", "tls_sock"));
    setsockopt.args.push_back(ArgDesc::IntRange("val", 0, 1024));
    setsockopt.fn = [](Kernel& k, const std::vector<i64>& args) {
      Sock* sk = Lookup(k, args[0]);
      return sk == nullptr ? kEBadf : SockCommonSetsockopt(k, sk, args[1]);
    };
    kernel.table().Add(std::move(setsockopt));

    SyscallDesc getsockopt;
    getsockopt.name = "tls$getsockopt";
    getsockopt.subsystem = name();
    getsockopt.args.push_back(ArgDesc::Resource("fd", "tls_sock"));
    getsockopt.args.push_back(ArgDesc::IntRange("opt", 0, 4));
    getsockopt.fn = [](Kernel& k, const std::vector<i64>& args) {
      Sock* sk = Lookup(k, args[0]);
      return sk == nullptr ? kEBadf : SockCommonGetsockopt(k, sk, args[1]);
    };
    kernel.table().Add(std::move(getsockopt));

    SyscallDesc err_abort;
    err_abort.name = "tls$err_abort";
    err_abort.subsystem = name();
    err_abort.args.push_back(ArgDesc::Resource("fd", "tls_sock"));
    err_abort.fn = [this](Kernel& k, const std::vector<i64>& args) {
      Sock* sk = Lookup(k, args[0]);
      return sk == nullptr ? kEBadf : TlsErrAbort(k, sk);
    };
    kernel.table().Add(std::move(err_abort));

    SyscallDesc anomalies;
    anomalies.name = "tls$anomalies";
    anomalies.subsystem = name();
    anomalies.args.push_back(ArgDesc::Resource("fd", "tls_sock"));
    anomalies.fn = [](Kernel& k, const std::vector<i64>& args) {
      Sock* sk = Lookup(k, args[0]);
      // ozz-lint: allow-raw — test-epilogue readout of the anomaly counter
      return sk == nullptr ? kEBadf : static_cast<long>(sk->err_anomalies.raw());
    };
    kernel.table().Add(std::move(anomalies));

    SyscallDesc poll;
    poll.name = "tls$poll";
    poll.subsystem = name();
    poll.args.push_back(ArgDesc::Resource("fd", "tls_sock"));
    poll.fn = [](Kernel& k, const std::vector<i64>& args) {
      Sock* sk = Lookup(k, args[0]);
      return sk == nullptr ? kEBadf : TlsPoll(k, sk);
    };
    kernel.table().Add(std::move(poll));
  }

  // net/tls/tls_main.c: tls_init() (Fig. 7 lines 3-11)
  long TlsInit(Kernel& k, Sock* sk) {
    if (OSK_READ_ONCE(sk->sk_prot) == &kTlsProto) {
      return kEAlready;
    }
    TlsContext* ctx = k.New<TlsContext>("tls_init");
    OSK_STORE(sk->sk_user_data, ctx);                       // Fig. 7 line 5
    const Proto* base = OSK_READ_ONCE(sk->sk_prot);
    OSK_STORE(ctx->sk_proto, base);                         // Fig. 7 line 6
    if (fix_init_wmb_) {
      OSK_SMP_WMB();                                        // Fig. 7 line 8 (the missing barrier)
    }
    OSK_WRITE_ONCE(sk->sk_prot, &kTlsProto);                // Fig. 7 line 9
    return kOk;
  }

  // net/tls/tls_main.c: tls_err_abort() (Table 4 #8)
  long TlsErrAbort(Kernel& k, Sock* sk) {
    OSK_WRITE_ONCE(sk->sk_err, -kEIO);
    if (fix_err_abort_) {
      OSK_SMP_WMB();
    }
    OSK_WRITE_ONCE(sk->strp_stopped, 1);
    (void)k;
    return kOk;
  }

 private:
  // net/core/socket.c: sock_common_setsockopt() (Fig. 7 lines 18-22)
  static long SockCommonSetsockopt(Kernel& k, Sock* sk, i64 val) {
    const Proto* prot = OSK_READ_ONCE(sk->sk_prot);
    k.Deref(prot, "sock_common_setsockopt");
    return prot->setsockopt(k, sk, val);
  }

  static long SockCommonGetsockopt(Kernel& k, Sock* sk, i64 opt) {
    const Proto* prot = OSK_READ_ONCE(sk->sk_prot);
    k.Deref(prot, "sock_common_getsockopt");
    return prot->getsockopt(k, sk, opt);
  }

  // Reader of the err_abort publication: once the stripper is stopped, a
  // zero sk_err is a protocol violation — the "wrong value" symptom of
  // Table 4 #8 (no crash; counted as an anomaly).
  static long TlsPoll(Kernel& k, Sock* sk) {
    u32 stopped = OSK_READ_ONCE(sk->strp_stopped);
    if (stopped == 0) {
      return 0;
    }
    // ozz-lint: allow-mixed — the buggy form's plain sk_err load IS the planted bug's surface
    i32 err = OSK_LOAD(sk->sk_err);
    if (err == 0) {
      u64 n = OSK_LOAD(sk->err_anomalies);
      OSK_STORE(sk->err_anomalies, n + 1);
      return 0;  // wrong value returned to userspace
    }
    (void)k;
    return err;
  }

  static Sock* Lookup(Kernel& k, i64 handle) {
    return static_cast<Sock*>(k.GetResource("tls_sock", handle));
  }

  bool fix_init_wmb_ = false;
  bool fix_err_abort_ = false;
};

std::unique_ptr<Subsystem> MakeTlsSubsystem() { return std::make_unique<TlsSubsystem>(); }

}  // namespace ozz::osk
