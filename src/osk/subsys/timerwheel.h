#ifndef OZZ_SRC_OSK_SUBSYS_TIMERWHEEL_H_
#define OZZ_SRC_OSK_SUBSYS_TIMERWHEEL_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// A timer-wheel slot in the kernel/time/timer.c sense: `timer$arm` registers
// the expiry handler (request_irq) and publishes the two-word expiry pair
// under spin_lock_irqsave; `timer$mod` re-programs the pair from process
// context. The hardirq handler reads the pair lockless on the same CPU, so
// the only thing that can make the update atomic against it is masking local
// interrupts — which the buggy form omits (plain spin_lock: enough against
// other CPUs' writers, useless against its own CPU's timer irq). An interrupt
// injected between the two stores observes a torn pair (hi != lo + 1).
// Fixed key: "timerwheel".
std::unique_ptr<Subsystem> MakeTimerwheelSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_TIMERWHEEL_H_
