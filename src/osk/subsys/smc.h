#ifndef OZZ_SRC_OSK_SUBSYS_SMC_H_
#define OZZ_SRC_OSK_SUBSYS_SMC_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// net/smc: smc_listen() publishes the socket state before the clcsock and
// file pointers are visible (missing smp_wmb). Readers crash dereferencing
// the unpublished pointers: connect (Table 3 Bug #8) and fput via close
// (Bug #10, a null-ptr *Write*). Fixed key: "smc".
std::unique_ptr<Subsystem> MakeSmcSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_SMC_H_
