// fd-table subsystem (Table 4 #5).
#include "src/osk/subsys/fs_fdtable.h"

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

constexpr u32 kMaxFds = 8;

struct FileOps {
  long (*read)(Kernel&, u64);
};

long GenericFileRead(Kernel&, u64 mode) { return static_cast<long>(mode); }

const FileOps kGenericFops{&GenericFileRead};

// Allocated without zeroing: fields hold poison until initialized.
struct File {
  oemu::Cell<u32> f_mode;
  oemu::Cell<const FileOps*> f_op;
};

struct FdTable {
  oemu::Cell<File*> fd[kMaxFds];
};

}  // namespace

class FsFdtableSubsystem : public Subsystem {
 public:
  const char* name() const override { return "fs"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("fs");
    fdt_ = kernel.New<FdTable>("fdtable_init");

    SyscallDesc open;
    open.name = "fs$open";
    open.subsystem = name();
    open.fn = [this](Kernel& k, const std::vector<i64>&) { return Open(k); };
    kernel.table().Add(std::move(open));

    SyscallDesc read;
    read.name = "fs$read";
    read.subsystem = name();
    read.args.push_back(ArgDesc::IntRange("fd", 0, kMaxFds - 1));
    read.fn = [this](Kernel& k, const std::vector<i64>& args) {
      return Read(k, static_cast<u32>(args[0]));
    };
    kernel.table().Add(std::move(read));
  }

  // fs/file.c: fd_install() — initialize the file, wmb, publish the slot.
  long Open(Kernel& k) {
    u32 slot = kMaxFds;
    for (u32 i = 0; i < kMaxFds; ++i) {
      // ozz-lint: allow-mixed — modelled kernel scans the table plain; the slot is republished below
      if (OSK_LOAD(fdt_->fd[i]) == nullptr) {
        slot = i;
        break;
      }
    }
    if (slot == kMaxFds) {
      return kENoMem;
    }
    File* f = static_cast<File*>(k.KmAllocUninit(sizeof(File), "fs_open"));
    OSK_STORE(f->f_mode, 0444);
    OSK_STORE(f->f_op, &kGenericFops);
    OSK_SMP_WMB();  // publish-side ordering is correct even in the buggy form
    // ozz-lint: allow-mixed — plain publish is the modelled pre-patch fs/file.c code
    OSK_STORE(fdt_->fd[slot], f);
    return static_cast<long>(slot);
  }

  // fs/file.c: __fget_light() — the buggy reader's plain load of the slot
  // lets the dependent f_op/f_mode loads be satisfied with pre-publication
  // (poison) contents on Alpha-class reordering.
  long Read(Kernel& k, u32 fd) {
    // ozz-lint: allow-mixed — the buggy form's plain slot load IS the planted bug's surface
    File* f = fixed_ ? OSK_LOAD_ACQUIRE(fdt_->fd[fd]) : OSK_LOAD(fdt_->fd[fd]);
    if (f == nullptr) {
      return kEBadf;
    }
    const FileOps* op = OSK_LOAD(f->f_op);
    k.Deref(op, "__fget_light");
    u32 mode = OSK_LOAD(f->f_mode);
    return op->read(k, mode);
  }

 private:
  FdTable* fdt_ = nullptr;
  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeFsFdtableSubsystem() {
  return std::make_unique<FsFdtableSubsystem>();
}

}  // namespace ozz::osk
