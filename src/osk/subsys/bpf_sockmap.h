#ifndef OZZ_SRC_OSK_SUBSYS_BPF_SOCKMAP_H_
#define OZZ_SRC_OSK_SUBSYS_BPF_SOCKMAP_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// net/core/skmsg (BPF sockmap): attaching a psock publishes the
// data_ready-installed flag before the psock pointer itself is visible
// (missing smp_wmb), so sk_psock_verdict_data_ready dereferences a null
// psock — Table 3 Bug #6. Fixed key: "bpf_sockmap".
std::unique_ptr<Subsystem> MakeBpfSockmapSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_BPF_SOCKMAP_H_
