// NBD block-device subsystem (Table 4 #7).
#include "src/osk/subsys/nbd.h"

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

struct NbdConfig {
  oemu::Cell<u64> flags;
  oemu::Cell<u32> blksize;
};

struct NbdDevice {
  oemu::Cell<u64> config_refs;
  oemu::Cell<NbdConfig*> config;
};

}  // namespace

class NbdSubsystem : public Subsystem {
 public:
  const char* name() const override { return "nbd"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("nbd");
    nbd_ = kernel.New<NbdDevice>("nbd_dev_init");

    SyscallDesc setup;
    setup.name = "nbd$setup";
    setup.subsystem = name();
    setup.args.push_back(ArgDesc::Flags("blksize", {512, 1024, 4096}));
    setup.fn = [this](Kernel& k, const std::vector<i64>& args) {
      return Setup(k, static_cast<u32>(args[0]));
    };
    kernel.table().Add(std::move(setup));

    SyscallDesc ioctl;
    ioctl.name = "nbd$ioctl";
    ioctl.subsystem = name();
    ioctl.fn = [this](Kernel& k, const std::vector<i64>&) { return Ioctl(k); };
    kernel.table().Add(std::move(ioctl));
  }

  // drivers/block/nbd.c: nbd_alloc_and_init_config() — writer is correctly
  // ordered: config first, then the reference count that readers test.
  long Setup(Kernel& k, u32 blksize) {
    if (OSK_LOAD(nbd_->config_refs) != 0) {
      return kEBusy;
    }
    NbdConfig* c = k.New<NbdConfig>("nbd_alloc_config");
    OSK_STORE(c->blksize, blksize);
    OSK_STORE(nbd_->config, c);
    OSK_SMP_WMB();  // writer barrier present even in the buggy form
    OSK_STORE(nbd_->config_refs, 1);
    return kOk;
  }

  // drivers/block/nbd.c: nbd_ioctl() — the buggy reader has no read barrier
  // between the refcount check and the config load, so the config load can
  // be satisfied before the refcount check (load-load reordering).
  long Ioctl(Kernel& k) {
    u64 refs = OSK_LOAD(nbd_->config_refs);
    if (refs == 0) {
      return kEInval;
    }
    if (fixed_) {
      OSK_SMP_RMB();  // the patch: order the refcount test before the load
    }
    NbdConfig* c = OSK_LOAD(nbd_->config);
    k.Deref(c, "nbd_ioctl");
    return static_cast<long>(OSK_LOAD(c->blksize));
  }

 private:
  NbdDevice* nbd_ = nullptr;
  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeNbdSubsystem() { return std::make_unique<NbdSubsystem>(); }

}  // namespace ozz::osk
