// Seqlock subsystem: spinlock-serialized writer, lockless reader.
#include "src/osk/subsys/seqlock.h"

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"
#include "src/osk/spinlock.h"

namespace ozz::osk {
namespace {

// Invariant: data2 == data1 + 1 outside a write section. The writer updates
// both words under `lock`; the sequence is odd while they are inconsistent.
struct SeqlockData {
  SpinLock lock;
  oemu::Cell<u64> seq;
  oemu::Cell<u64> data1;
  oemu::Cell<u64> data2;
};

}  // namespace

class SeqlockSubsystem : public Subsystem {
 public:
  const char* name() const override { return "seqlock"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("seqlock");
    sl_ = kernel.New<SeqlockData>("seqlock_init");
    sl_->lock.InitClass(kernel, "seqlock_writer");
    // ozz-lint: allow-raw — subsystem init, before any simulated thread runs
    sl_->data1.set_raw(0);
    // ozz-lint: allow-raw — subsystem init, before any simulated thread runs
    sl_->data2.set_raw(1);

    SyscallDesc update;
    update.name = "seqlock$update";
    update.subsystem = name();
    update.args.push_back(ArgDesc::IntRange("value", 1, 1 << 20));
    update.fn = [this](Kernel& k, const std::vector<i64>& args) {
      return Update(k, static_cast<u64>(args[0]));
    };
    kernel.table().Add(std::move(update));

    SyscallDesc read;
    read.name = "seqlock$read";
    read.subsystem = name();
    read.fn = [this](Kernel& k, const std::vector<i64>&) { return Read(k); };
    kernel.table().Add(std::move(read));
  }

  // write_seqlock() + two-word update + write_sequnlock(). The spinlock
  // excludes other writers (no odd-check needed), but readers never take it:
  // only the seqcount barriers order the data stores against the sequence,
  // and the buggy form omits them.
  long Update(Kernel& k, u64 value) {
    FunctionContext fn("seqlock_update");
    SpinGuard g(k, sl_->lock);
    u64 s = OSK_LOAD(sl_->seq);
    OSK_STORE(sl_->seq, s + 1);
    if (fixed_) {
      OSK_SMP_WMB();  // data stores must not precede the odd sequence
    }
    OSK_STORE(sl_->data1, value);
    OSK_STORE(sl_->data2, value + 1);
    if (fixed_) {
      OSK_SMP_WMB();  // data stores must drain before the even sequence
    }
    OSK_STORE(sl_->seq, s + 2);
    return kOk;
  }

  // read_seqbegin() / read_seqretry() without any lock.
  long Read(Kernel& k) {
    FunctionContext fn("seqlock_read");
    u64 s1 = OSK_LOAD(sl_->seq);
    if (s1 & 1) {
      return kEAgain;  // writer mid-section
    }
    if (fixed_) {
      OSK_SMP_RMB();  // data loads must not precede the first seq check
    }
    u64 d1 = OSK_LOAD(sl_->data1);
    u64 d2 = OSK_LOAD(sl_->data2);
    if (fixed_) {
      OSK_SMP_RMB();  // data loads must complete before the re-check
    }
    u64 s2 = OSK_LOAD(sl_->seq);
    if (s1 != s2) {
      return kEAgain;
    }
    // Both sequence checks passed, so the pair must be consistent; a torn
    // pair here means a data store drained after the even sequence (or a
    // data load was satisfied from before the window).
    k.BugOn(d2 != d1 + 1, "seqlock read tore (data2 != data1 + 1)");
    return static_cast<long>(d1 & 0x7fffffff);
  }

 private:
  SeqlockData* sl_ = nullptr;
  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeSeqlockSubsystem() {
  return std::make_unique<SeqlockSubsystem>();
}

}  // namespace ozz::osk
