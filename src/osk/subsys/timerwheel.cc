// Timer wheel subsystem: process-context re-arm racing the expiry hardirq.
#include "src/osk/subsys/timerwheel.h"

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"
#include "src/osk/spinlock.h"

namespace ozz::osk {
namespace {

// Invariant: expiry_hi == expiry_lo + 1 whenever armed. The expiry handler
// runs in hardirq context on the arming CPU and validates the pair; only an
// irqs-off update keeps it atomic against that handler.
struct TimerwheelData {
  SpinLock lock;
  oemu::Cell<u64> armed;
  oemu::Cell<u64> expiry_lo;
  oemu::Cell<u64> expiry_hi;
};

}  // namespace

class TimerwheelSubsystem : public Subsystem {
 public:
  const char* name() const override { return "timerwheel"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("timerwheel");
    tw_ = kernel.New<TimerwheelData>("timerwheel_init");
    tw_->lock.InitClass(kernel, "timerwheel_base");
    // ozz-lint: allow-raw — subsystem init, before any simulated thread runs
    tw_->armed.set_raw(0);
    // ozz-lint: allow-raw — subsystem init, before any simulated thread runs
    tw_->expiry_lo.set_raw(0);
    // ozz-lint: allow-raw — subsystem init, before any simulated thread runs
    tw_->expiry_hi.set_raw(1);

    SyscallDesc arm;
    arm.name = "timer$arm";
    arm.subsystem = name();
    arm.args.push_back(ArgDesc::IntRange("expires", 1, 1 << 20));
    arm.fn = [this](Kernel& k, const std::vector<i64>& args) {
      return Arm(k, static_cast<u64>(args[0]));
    };
    kernel.table().Add(std::move(arm));

    SyscallDesc mod;
    mod.name = "timer$mod";
    mod.subsystem = name();
    mod.args.push_back(ArgDesc::IntRange("expires", 1, 1 << 20));
    mod.fn = [this](Kernel& k, const std::vector<i64>& args) {
      return Mod(k, static_cast<u64>(args[0]));
    };
    kernel.table().Add(std::move(mod));
  }

  // add_timer(): registers the expiry hardirq and publishes the initial pair
  // with interrupts masked — an expiry firing mid-arm must see either the old
  // or the new pair, never half of each.
  long Arm(Kernel& k, u64 expires) {
    FunctionContext fn("timerwheel_arm");
    k.RequestIrq("timerwheel", [this](Kernel& kk) { Expire(kk); });
    SpinGuardIrq g(k, tw_->lock);
    OSK_STORE(tw_->expiry_lo, expires);
    OSK_STORE(tw_->expiry_hi, expires + 1);
    OSK_STORE(tw_->armed, 1);
    return kOk;
  }

  // mod_timer(): re-programs the expiry pair. The spinlock serializes
  // against other CPUs' writers, but in the buggy form interrupts stay
  // enabled, so this CPU's own expiry irq can fire between the two stores
  // and the handler reads a torn pair. The fix masks irqs for the update.
  long Mod(Kernel& k, u64 expires) {
    FunctionContext fn("timerwheel_mod");
    if (fixed_) {
      k.LocalIrqSave();  // the update must be atomic against this CPU's irq
    }
    SpinGuard g(k, tw_->lock);
    OSK_STORE(tw_->expiry_lo, expires);
    OSK_STORE(tw_->expiry_hi, expires + 1);
    if (fixed_) {
      k.LocalIrqRestore();
    }
    return kOk;
  }

  // Expiry handler, hardirq context: validates the invariant lockless. A
  // torn pair here means a process-context update was interrupted midway.
  void Expire(Kernel& k) {
    FunctionContext fn("timerwheel_expire");
    u64 armed = OSK_LOAD(tw_->armed);
    if (armed == 0) {
      return;
    }
    u64 lo = OSK_LOAD(tw_->expiry_lo);
    u64 hi = OSK_LOAD(tw_->expiry_hi);
    k.BugOn(hi != lo + 1, "timerwheel expiry tore (hi != lo + 1)");
  }

 private:
  TimerwheelData* tw_ = nullptr;
  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeTimerwheelSubsystem() {
  return std::make_unique<TimerwheelSubsystem>();
}

}  // namespace ozz::osk
