// n_gsm TTY multiplexer subsystem (Table 3 Bug #11).
#include "src/osk/subsys/gsm.h"

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

constexpr u32 kNumDlci = 4;

struct Dlci {
  oemu::Cell<u32> mtu;
  oemu::Cell<u32> state;
};

struct GsmMux {
  oemu::Cell<Dlci*> dlci[kNumDlci];
  oemu::Cell<u32> present[kNumDlci];
};

}  // namespace

class GsmSubsystem : public Subsystem {
 public:
  const char* name() const override { return "gsm"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("gsm");
    mux_ = kernel.New<GsmMux>("gsm_mux_init");

    SyscallDesc attach;
    attach.name = "gsm$dlci_open";
    attach.subsystem = name();
    attach.args.push_back(ArgDesc::IntRange("idx", 0, kNumDlci - 1));
    attach.fn = [this](Kernel& k, const std::vector<i64>& args) {
      return DlciOpen(k, static_cast<u32>(args[0]));
    };
    kernel.table().Add(std::move(attach));

    SyscallDesc config;
    config.name = "gsm$dlci_config";
    config.subsystem = name();
    config.args.push_back(ArgDesc::IntRange("idx", 0, kNumDlci - 1));
    config.args.push_back(ArgDesc::IntRange("mtu", 8, 1500));
    config.fn = [this](Kernel& k, const std::vector<i64>& args) {
      return DlciConfig(k, static_cast<u32>(args[0]), static_cast<u32>(args[1]));
    };
    kernel.table().Add(std::move(config));
  }

  // drivers/tty/n_gsm.c: gsm_dlci_alloc() + activation.
  long DlciOpen(Kernel& k, u32 idx) {
    if (OSK_READ_ONCE(mux_->present[idx]) != 0) {
      return kEAlready;
    }
    Dlci* d = k.New<Dlci>("gsm_dlci_alloc");
    OSK_STORE(d->mtu, 64);
    OSK_STORE(mux_->dlci[idx], d);
    if (fixed_) {
      OSK_SMP_WMB();
    }
    OSK_WRITE_ONCE(mux_->present[idx], 1);
    return kOk;
  }

  // drivers/tty/n_gsm.c: gsm_dlci_config() — trusts the present flag.
  long DlciConfig(Kernel& k, u32 idx, u32 mtu) {
    if (OSK_READ_ONCE(mux_->present[idx]) == 0) {
      return kENoEnt;
    }
    Dlci* d = OSK_LOAD(mux_->dlci[idx]);
    k.Deref(d, "gsm_dlci_config");
    OSK_STORE(d->mtu, mtu);
    return kOk;
  }

 private:
  GsmMux* mux_ = nullptr;
  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeGsmSubsystem() { return std::make_unique<GsmSubsystem>(); }

}  // namespace ozz::osk
