#ifndef OZZ_SRC_OSK_SUBSYS_UNIX_SOCK_H_
#define OZZ_SRC_OSK_SUBSYS_UNIX_SOCK_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// net/unix: unix_bind() publishes u->addr with a correct writer-side barrier,
// but readers load it with a *plain* load and then follow the pointer —
// load-load reordering lets the dependent field load observe pre-publication
// contents (Table 4 #9, L-L; the patch added acquire ordering on the reader).
// Fixed key: "unix" (reader uses smp_load_acquire).
std::unique_ptr<Subsystem> MakeUnixSockSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_UNIX_SOCK_H_
