// AF_UNIX subsystem (Table 4 #9).
#include "src/osk/subsys/unix_sock.h"

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

struct UnixPath {
  oemu::Cell<u32> dentry_ref;
};

struct UnixAddr {
  oemu::Cell<u32> len;
  oemu::Cell<UnixPath*> path;
};

struct UnixSock {
  oemu::Cell<UnixAddr*> addr;
};

}  // namespace

class UnixSockSubsystem : public Subsystem {
 public:
  const char* name() const override { return "unix"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("unix");
    u_ = kernel.New<UnixSock>("unix_sock_init");

    SyscallDesc bind;
    bind.name = "unix$bind";
    bind.subsystem = name();
    bind.args.push_back(ArgDesc::IntRange("len", 1, 108));
    bind.fn = [this](Kernel& k, const std::vector<i64>& args) {
      return Bind(k, static_cast<u32>(args[0]));
    };
    kernel.table().Add(std::move(bind));

    SyscallDesc getname;
    getname.name = "unix$getname";
    getname.subsystem = name();
    getname.fn = [this](Kernel& k, const std::vector<i64>&) { return Getname(k); };
    kernel.table().Add(std::move(getname));
  }

  // net/unix/af_unix.c: unix_bind() — the writer side is correctly ordered
  // (initialize the addr, wmb, publish the pointer).
  long Bind(Kernel& k, u32 len) {
    // ozz-lint: allow-mixed — racy existence check; rebinding is rejected again under publication
    if (OSK_LOAD(u_->addr) != nullptr) {
      return kEAlready;
    }
    UnixAddr* a = k.New<UnixAddr>("unix_bind_addr");
    OSK_STORE(a->len, len);
    OSK_STORE(a->path, k.New<UnixPath>("unix_bind_path"));
    OSK_SMP_WMB();  // writer barrier present even in the buggy form
    // ozz-lint: allow-mixed — plain publish is the modelled pre-patch af_unix code
    OSK_STORE(u_->addr, a);
    return kOk;
  }

  // net/unix/af_unix.c: unix_getname() — the buggy reader uses a plain load
  // of u->addr; on Alpha-class reordering the dependent loads of a->path and
  // a->len can observe the pre-initialization contents.
  long Getname(Kernel& k) {
    // ozz-lint: allow-mixed — the buggy form's plain addr load IS the planted bug's surface
    UnixAddr* a = fixed_ ? OSK_LOAD_ACQUIRE(u_->addr) : OSK_LOAD(u_->addr);
    if (a == nullptr) {
      return kENoEnt;
    }
    UnixPath* p = OSK_LOAD(a->path);
    k.Deref(p, "unix_getname");
    u32 refs = OSK_LOAD(p->dentry_ref);
    OSK_STORE(p->dentry_ref, refs + 1);
    return static_cast<long>(OSK_LOAD(a->len));
  }

 private:
  UnixSock* u_ = nullptr;
  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeUnixSockSubsystem() {
  return std::make_unique<UnixSockSubsystem>();
}

}  // namespace ozz::osk
