#ifndef OZZ_SRC_OSK_SUBSYS_GSM_H_
#define OZZ_SRC_OSK_SUBSYS_GSM_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// drivers/tty/n_gsm: attaching a DLCI publishes the per-index present flag
// before the dlci pointer store is visible; gsm_dlci_config then dereferences
// a null dlci — Table 3 Bug #11. Fixed key: "gsm".
std::unique_ptr<Subsystem> MakeGsmSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_GSM_H_
