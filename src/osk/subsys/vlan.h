#ifndef OZZ_SRC_OSK_SUBSYS_VLAN_H_
#define OZZ_SRC_OSK_SUBSYS_VLAN_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// net/8021q: vlan_group_set_device() stores the device pointer into the group
// array, then bumps nr_vlan_devs; without a write barrier a reader that
// trusts the count dereferences a slot whose store is still buffered —
// Table 4 #1 ("net: fix a data race when get vlan device", S-S).
// Fixed key: "vlan".
std::unique_ptr<Subsystem> MakeVlanSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_VLAN_H_
