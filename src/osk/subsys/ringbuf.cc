// Seqcount record subsystem (paper [62]-style torn-read bug).
#include "src/osk/subsys/ringbuf.h"

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

// Invariant: lo == hi outside a write section (they are two halves of one
// logical record; a reader observing lo != hi has read a torn record).
struct SeqRecord {
  oemu::Cell<u64> seq;
  oemu::Cell<u64> lo;
  oemu::Cell<u64> hi;
};

}  // namespace

class RingbufSubsystem : public Subsystem {
 public:
  const char* name() const override { return "ringbuf"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("ringbuf");
    rec_ = kernel.New<SeqRecord>("ringbuf_init");

    SyscallDesc write;
    write.name = "ringbuf$write";
    write.subsystem = name();
    write.args.push_back(ArgDesc::IntRange("value", 1, 1 << 20));
    write.fn = [this](Kernel& k, const std::vector<i64>& args) {
      return Write(k, static_cast<u64>(args[0]));
    };
    kernel.table().Add(std::move(write));

    SyscallDesc read;
    read.name = "ringbuf$read";
    read.subsystem = name();
    read.fn = [this](Kernel& k, const std::vector<i64>&) { return Read(k); };
    kernel.table().Add(std::move(read));
  }

  // Writer side of the seqcount: seq odd while the record is inconsistent.
  long Write(Kernel& k, u64 value) {
    u64 s = OSK_LOAD(rec_->seq);
    if (s & 1) {
      return kEBusy;  // concurrent writer
    }
    OSK_STORE(rec_->seq, s + 1);
    if (fixed_) {
      OSK_SMP_WMB();  // record stores must not precede the odd sequence
    }
    OSK_STORE(rec_->lo, value);
    OSK_STORE(rec_->hi, value);
    if (fixed_) {
      OSK_SMP_WMB();  // record stores must complete before the even sequence
    }
    OSK_STORE(rec_->seq, s + 2);
    (void)k;
    return kOk;
  }

  // Reader side: retry while a writer is active, validate seq afterwards.
  long Read(Kernel& k) {
    u64 s1 = OSK_LOAD(rec_->seq);
    if (s1 & 1) {
      return kEAgain;
    }
    if (fixed_) {
      OSK_SMP_RMB();  // record loads must not precede the first seq check
    }
    u64 lo = OSK_LOAD(rec_->lo);
    u64 hi = OSK_LOAD(rec_->hi);
    if (fixed_) {
      OSK_SMP_RMB();  // record loads must complete before the re-check
    }
    u64 s2 = OSK_LOAD(rec_->seq);
    if (s1 != s2) {
      return kEAgain;
    }
    // Both sequence checks passed, so the record must be consistent; a torn
    // read here means barriers let the loads/stores escape the seq window.
    k.BugOn(lo != hi, "seqcount read tore (lo != hi)");
    return static_cast<long>(lo & 0x7fffffff);
  }

 private:
  SeqRecord* rec_ = nullptr;
  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeRingbufSubsystem() {
  return std::make_unique<RingbufSubsystem>();
}

}  // namespace ozz::osk
