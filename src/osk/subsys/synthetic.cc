// Synthetic SB (store-buffering) subsystem — paper Figure 10 in C++.
#include "src/osk/subsys/synthetic.h"

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

struct SbState {
  oemu::Cell<u64> x;
  oemu::Cell<u64> y;
  oemu::Cell<u64> r1;
  oemu::Cell<u32> t1_done;
};

}  // namespace

class SyntheticSubsystem : public Subsystem {
 public:
  const char* name() const override { return "synthetic"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("synthetic");
    st_ = kernel.New<SbState>("synthetic_init");

    SyscallDesc t1;
    t1.name = "syn$t1";
    t1.subsystem = name();
    t1.fn = [this](Kernel& k, const std::vector<i64>&) { return Thread1(k); };
    kernel.table().Add(std::move(t1));

    SyscallDesc nop;
    nop.name = "syn$nop";
    nop.subsystem = name();
    nop.fn = [](Kernel&, const std::vector<i64>&) { return kOk; };
    kernel.table().Add(std::move(nop));

    SyscallDesc t2;
    t2.name = "syn$t2";
    t2.subsystem = name();
    t2.fn = [this](Kernel& k, const std::vector<i64>&) { return Thread2(k); };
    kernel.table().Add(std::move(t2));
  }

  // Fig. 10 thread 1: x.store(1, Relaxed); r1 = y.load(Relaxed).
  long Thread1(Kernel& k) {
    OSK_WRITE_ONCE(st_->x, 1);
    if (fixed_) {
      OSK_SMP_MB();  // SB needs a full barrier between the store and load
    }
    u64 r = OSK_READ_ONCE(st_->y);
    OSK_WRITE_ONCE(st_->r1, r);
    OSK_WRITE_ONCE(st_->t1_done, 1);
    (void)k;
    return static_cast<long>(r);
  }

  // Fig. 10 thread 2 plus the assertion thread: y.store(1); r2 = x.load();
  // then assert!(x == 1 || y == 1) — i.e. r1 == 1 || r2 == 1.
  long Thread2(Kernel& k) {
    OSK_WRITE_ONCE(st_->y, 1);
    if (fixed_) {
      OSK_SMP_MB();
    }
    u64 r2 = OSK_READ_ONCE(st_->x);
    if (OSK_READ_ONCE(st_->t1_done) == 1) {
      u64 r1 = OSK_READ_ONCE(st_->r1);
      // Sequential consistency (and even TSO-with-one-barrier) forbids both
      // threads reading zero; only store-load reordering produces it.
      k.BugOn(r1 == 0 && r2 == 0, "SB litmus violated (r1 == 0 && r2 == 0)");
    }
    return static_cast<long>(r2);
  }

 private:
  SbState* st_ = nullptr;
  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeSyntheticSubsystem() {
  return std::make_unique<SyntheticSubsystem>();
}

}  // namespace ozz::osk
