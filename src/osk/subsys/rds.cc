// net/rds subsystem (paper Figure 8, Table 3 Bug #1).
#include "src/osk/subsys/rds.h"

#include "src/oemu/cell.h"
#include "src/osk/bitops.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

constexpr int kInXmitBit = 2;  // RDS_IN_XMIT

struct ConnPath {
  oemu::Cell<u64> cp_flags;
  oemu::Cell<u32> data_len;   // message length the current buffer must hold
  oemu::Cell<u8*> data_ptr;   // kmalloc'd buffer of exactly data_len bytes
};

}  // namespace

class RdsSubsystem : public Subsystem {
 public:
  const char* name() const override { return "rds"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("rds");
    cp_ = kernel.New<ConnPath>("rds_conn_init");
    u8* initial = static_cast<u8*>(kernel.KmAlloc(4, "rds_initial_msg"));
    // ozz-lint: allow-raw — subsystem init, before any simulated thread runs
    cp_->data_len.set_raw(4);
    // ozz-lint: allow-raw — subsystem init, before any simulated thread runs
    cp_->data_ptr.set_raw(initial);

    SyscallDesc send;
    send.name = "rds$sendmsg";
    send.subsystem = name();
    send.args.push_back(ArgDesc::Flags("len", {4, 8, 16, 32}));
    send.fn = [this](Kernel& k, const std::vector<i64>& args) {
      return Sendmsg(k, static_cast<u32>(args[0]));
    };
    kernel.table().Add(std::move(send));

    SyscallDesc xmit;
    xmit.name = "rds$loop_xmit";
    xmit.subsystem = name();
    xmit.fn = [this](Kernel& k, const std::vector<i64>&) { return LoopXmit(k); };
    kernel.table().Add(std::move(xmit));
  }

  // net/rds/send.c: acquire_in_xmit() — try-lock (Fig. 8 lines 2-8).
  bool AcquireInXmit() { return !OSK_TEST_AND_SET_BIT(cp_->cp_flags, kInXmitBit); }

  // net/rds/send.c: release_in_xmit() (Fig. 8 lines 10-15). The buggy form
  // uses clear_bit(): nothing orders the critical-section stores before the
  // bit clears, so they may still sit in the store buffer when another CPU
  // takes the lock.
  void ReleaseInXmit() {
    if (fixed_) {
      OSK_CLEAR_BIT_UNLOCK(cp_->cp_flags, kInXmitBit);
    } else {
      OSK_CLEAR_BIT(cp_->cp_flags, kInXmitBit);
    }
  }

  // Swaps in a new message buffer of `len` bytes under the xmit lock.
  long Sendmsg(Kernel& k, u32 len) {
    FunctionContext fn("rds_sendmsg");
    if (!AcquireInXmit()) {
      return kEAgain;
    }
    u8* new_buf = static_cast<u8*>(k.KmAlloc(len, "rds_sendmsg"));
    OSK_STORE(cp_->data_len, len);
    OSK_STORE(cp_->data_ptr, new_buf);
    // The superseded buffer is retired lazily (elsewhere); what matters here
    // is that (data_len, data_ptr) stay mutually consistent under the lock.
    ReleaseInXmit();
    return kOk;
  }

  // net/rds/loop.c: rds_loop_xmit() — walks the current message under the
  // xmit lock; with mutual exclusion broken it can read `data_len` bytes out
  // of a shorter (or already freed) buffer.
  long LoopXmit(Kernel& k) {
    FunctionContext fn("rds_loop_xmit");
    if (!AcquireInXmit()) {
      return kEAgain;
    }
    u32 len = OSK_LOAD(cp_->data_len);
    u8* buf = OSK_LOAD(cp_->data_ptr);
    k.Deref(buf, "rds_loop_xmit");
    u64 checksum = 0;
    // Touch first and last byte: the out-of-bounds read fires here when the
    // buffer swap was reordered past the previous holder's unlock.
    checksum += OSK_LOAD_BYTE(reinterpret_cast<uptr>(buf));
    checksum += OSK_LOAD_BYTE(reinterpret_cast<uptr>(buf) + len - 1);
    ReleaseInXmit();
    return static_cast<long>(checksum);
  }

 private:
  ConnPath* cp_ = nullptr;
  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeRdsSubsystem() { return std::make_unique<RdsSubsystem>(); }

}  // namespace ozz::osk
