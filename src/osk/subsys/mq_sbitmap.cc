// blk-mq / sbitmap subsystem (Table 4 #6 — the thread-migration bug).
//
// Shape of the bug ("sbitmap: order READ/WRITE freed instance and setting
// clear bit"): completion writes the request instance and then clears the
// per-CPU tag's busy bit with a *plain* store. Nothing orders the instance
// write before the clear, so a waiter that observes the cleared bit may free
// (and recycle) the instance while the completion's write is still sitting
// in the store buffer — the delayed store then commits into freed memory.
// The fixed form puts an smp_wmb before the clear.
#include "src/osk/subsys/mq_sbitmap.h"

#include "src/oemu/cell.h"
#include "src/osk/bitops.h"
#include "src/osk/kernel.h"
#include "src/osk/percpu.h"

namespace ozz::osk {
namespace {

struct Request {
  oemu::Cell<u32> status;
};

// Tag lifecycle, owned by exactly one party at a time. Transitions into an
// owned state use fully-ordered compare-and-swap (like blk-mq's atomic tag
// ops) so plain interleavings are race-free; the hand-off stores publishing
// kCompleted / kFree are plain — the kCompleted one is the bug site.
enum TagState : u64 {
  kFree = 0,
  kInflight = 1,
  kCompleting = 2,
  kCompleted = 3,
  kReaping = 4,
};

// One tag cache per CPU (the per-cpu alloc_hint of sbitmap).
struct TagSlot {
  oemu::Cell<u64> state;
  oemu::Cell<Request*> req;
};

// Fully-ordered CAS built on the RMW primitive: operand packs
// (expected | desired << 32); returns the previous value.
inline u64 RmwFnCas(u64 old, u64 operand) {
  u64 expected = operand & 0xffffffffull;
  u64 desired = operand >> 32;
  return old == expected ? desired : old;
}

#define MQ_CAS(cell, expected, desired)                                       \
  OSK_RMW((cell), ::ozz::oemu::RmwOrder::kFull, ::ozz::osk::RmwFnCas,         \
          (static_cast<u64>(expected) | (static_cast<u64>(desired) << 32)))

}  // namespace

class MqSbitmapSubsystem : public Subsystem {
 public:
  const char* name() const override { return "mq"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("mq");
    force_cpu0_ = kernel.config().percpu_migration_hack;
    slots_ = kernel.New<PerCpu<TagSlot*>>("mq_tags_init");
    for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
      // ozz-lint: allow-raw — subsystem init, before any simulated thread runs
      slots_->on_cpu(cpu).set_raw(kernel.New<TagSlot>("mq_tag_slot"));
    }

    SyscallDesc submit;
    submit.name = "mq$submit";
    submit.subsystem = name();
    submit.fn = [this](Kernel& k, const std::vector<i64>&) { return Submit(k); };
    kernel.table().Add(std::move(submit));

    SyscallDesc complete;
    complete.name = "mq$complete";
    complete.subsystem = name();
    complete.fn = [this](Kernel& k, const std::vector<i64>&) { return Complete(k); };
    kernel.table().Add(std::move(complete));

    SyscallDesc reap;
    reap.name = "mq$reap";
    reap.subsystem = name();
    reap.fn = [this](Kernel& k, const std::vector<i64>&) { return Reap(k); };
    kernel.table().Add(std::move(reap));
  }

  // ozz-lint: allow-raw — slot pointer is set once at init, never racy
  TagSlot* ThisCpuSlot() { return slots_->this_cpu(force_cpu0_).raw(); }

  // blk_mq_get_tag(): install a fresh request, then claim the tag with a
  // fully-ordered CAS (the CAS flushes the store buffer, so the request is
  // visible before kInflight is).
  long Submit(Kernel& k) {
    FunctionContext fn("blk_mq_get_tag");
    TagSlot* s = ThisCpuSlot();
    if (OSK_READ_ONCE(s->state) != kFree) {
      return kEBusy;  // advisory fast path
    }
    Request* r = k.New<Request>("mq_submit_alloc");
    OSK_STORE(r->status, 1);
    OSK_STORE(s->req, r);
    if (MQ_CAS(s->state, kFree, kInflight) != kFree) {
      return kEBusy;  // lost the race; `r` leaks (harmless), req may be ours
    }
    return kOk;
  }

  // blk_mq_complete_request() + sbitmap_queue_clear(): claim the in-flight
  // request, finalize the instance, then publish completion with a *plain*
  // store. The buggy form has no barrier between the instance write and the
  // publication, so the write can be reordered past it.
  long Complete(Kernel& k) {
    FunctionContext fn("sbitmap_queue_clear");
    TagSlot* s = ThisCpuSlot();
    if (MQ_CAS(s->state, kInflight, kCompleting) != kInflight) {
      return kEInval;
    }
    Request* r = OSK_LOAD(s->req);
    k.Deref(r, "sbitmap_queue_clear");
    OSK_STORE(r->status, 0);  // the "WRITE of the freed instance"
    if (fixed_) {
      OSK_SMP_WMB();  // the patch: instance writes complete before the clear
    }
    // ozz-lint: allow-mixed — plain completion store is the modelled pre-patch blk-mq code
    OSK_STORE(s->state, kCompleted);
    return kOk;
  }

  // The waiter: claim the completed request and retire (free) it. The
  // kCompleted state promises the completion finished with the instance;
  // with the barrier missing, the status store may still be in flight and
  // the waiter observes (and would free) an inconsistent request.
  long Reap(Kernel& k) {
    FunctionContext fn("blk_mq_put_tag");
    TagSlot* s = ThisCpuSlot();
    if (MQ_CAS(s->state, kCompleted, kReaping) != kCompleted) {
      return kEBusy;  // nothing completed (or still in flight)
    }
    Request* r = OSK_LOAD(s->req);
    k.Deref(r, "blk_mq_put_tag");
    u32 status = OSK_LOAD(r->status);
    k.BugOn(status != 0, "blk_mq_put_tag: reaping an incomplete request");
    OSK_STORE(s->req, nullptr);
    k.KmFree(r, "mq_reap_free");
    // Correct hand-off in both forms: the tag only becomes allocatable once
    // the retirement is complete (this was never the buggy half).
    OSK_STORE_RELEASE(s->state, static_cast<u64>(kFree));
    return kOk;
  }

 private:
  PerCpu<TagSlot*>* slots_ = nullptr;
  bool fixed_ = false;
  bool force_cpu0_ = false;
};

std::unique_ptr<Subsystem> MakeMqSbitmapSubsystem() {
  return std::make_unique<MqSbitmapSubsystem>();
}

}  // namespace ozz::osk
