#ifndef OZZ_SRC_OSK_SUBSYS_RINGBUF_H_
#define OZZ_SRC_OSK_SUBSYS_RINGBUF_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// A seqcount-protected record, modelled after the buffered read/write race of
// mm/filemap ("avoid buffered read/write race to read inconsistent data",
// [62] in the paper). The writer bumps the sequence around a multi-word
// update; the reader validates the sequence before and after. With the
// barriers missing, reordering lets the reader return a *torn* record even
// though both sequence checks pass — a data-corruption (wrong value) bug
// caught by a kernel consistency assertion. Fixed key: "ringbuf".
std::unique_ptr<Subsystem> MakeRingbufSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_RINGBUF_H_
