// RCU publish/subscribe subsystem: missing-release publisher, dependency-
// ordered lockless readers.
#include "src/osk/subsys/rcu.h"

#include <atomic>

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

// Invariant: value == key + 1 once initialized. Allocated without zeroing,
// so a reader that observes the publish before the initializing stores have
// drained sees the arena poison pattern and the invariant fails.
struct RcuItem {
  oemu::Cell<u64> key;
  oemu::Cell<u64> value;
};

struct RcuRoot {
  oemu::Cell<RcuItem*> head;
};

}  // namespace

class RcuSubsystem : public Subsystem {
 public:
  const char* name() const override { return "rcu"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("rcu");
    root_ = kernel.New<RcuRoot>("rcu_init");

    SyscallDesc update;
    update.name = "rcu$update";
    update.subsystem = name();
    update.fn = [this](Kernel& k, const std::vector<i64>&) { return Update(k); };
    kernel.table().Add(std::move(update));

    SyscallDesc read;
    read.name = "rcu$read";
    read.subsystem = name();
    read.fn = [this](Kernel& k, const std::vector<i64>&) { return Read(k); };
    kernel.table().Add(std::move(read));
  }

  // rcu_assign_pointer() path: initialize the fresh item, then publish it.
  // The publish must be a release store — the buggy form publishes plain, so
  // the pointer store can commit while key/value still sit in the updater's
  // store buffer. (The replaced item is deliberately leaked: reclamation
  // would need a grace period, which is not the bug under test.)
  long Update(Kernel& k) {
    FunctionContext fn("rcu_publish");
    RcuItem* it = static_cast<RcuItem*>(k.KmAllocUninit(sizeof(RcuItem), "rcu_publish"));
    const u64 g = gen_.fetch_add(1, std::memory_order_relaxed) + 1;
    OSK_STORE(it->key, g);
    OSK_STORE(it->value, g + 1);
    if (fixed_) {
      OSK_STORE_RELEASE(root_->head, it);
    } else {
      // ozz-lint: allow-mixed — the plain publish IS the planted missing-release bug
      OSK_STORE(root_->head, it);
    }
    return kOk;
  }

  // rcu_dereference() path, correct in both forms: a marked pointer load
  // heads the dependency chain, and the field loads carry an address
  // dependency on it — that chain, not a barrier, is what keeps them from
  // being satisfied ahead of the pointer load under load-load-relaxed
  // models.
  long Read(Kernel& k) {
    FunctionContext fn("rcu_read");
    oemu::DepToken tok;
    RcuItem* it = OSK_READ_ONCE_TOK(root_->head, tok);
    if (it == nullptr) {
      return kENoEnt;  // nothing published yet
    }
    u64 key = OSK_LOAD_ADDR_DEP(it->key, tok);
    u64 value = OSK_LOAD_ADDR_DEP(it->value, tok);
    // A published item always satisfies the invariant; poison here means the
    // publish outran the initializing stores.
    k.BugOn(value != key + 1, "rcu stale read (value != key + 1)");
    return static_cast<long>(key & 0x7fffffff);
  }

 private:
  RcuRoot* root_ = nullptr;
  // ozz-lint: allow-atomic — generation counter for unique keys; updater serialization is not under test
  std::atomic<u64> gen_{0};
  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeRcuSubsystem() {
  return std::make_unique<RcuSubsystem>();
}

}  // namespace ozz::osk
