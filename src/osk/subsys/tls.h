#ifndef OZZ_SRC_OSK_SUBSYS_TLS_H_
#define OZZ_SRC_OSK_SUBSYS_TLS_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// net/tls: three scenarios from the paper —
//  * Bug #9 (Figure 7): tls_init() publishes sk->sk_prot before ctx->sk_proto
//    is initialized (missing smp_wmb); tls_setsockopt crashes on the
//    uninitialized context. The WRITE_ONCE/READ_ONCE annotations of the
//    earlier (incorrect) data-race fix are faithfully present.
//  * Bug #5: same publication race reached through tls_getsockopt.
//  * Table 4 #8: tls_err_abort() lockless error publication — the symptom is
//    a wrong value returned to the syscall, not a crash (tracked by an
//    anomaly counter).
// Fixed keys: "tls" (everything), "tls.init_wmb", "tls.err_abort".
std::unique_ptr<Subsystem> MakeTlsSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_TLS_H_
