// BPF sockmap subsystem (Table 3 Bug #6).
#include "src/osk/subsys/bpf_sockmap.h"

#include "src/oemu/cell.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

struct Psock {
  oemu::Cell<u32> verdict_prog;  // loaded verdict program id
  oemu::Cell<u64> rx_count;
};

struct SockmapSock {
  oemu::Cell<Psock*> psock;
  oemu::Cell<u32> data_ready_installed;
};

}  // namespace

class BpfSockmapSubsystem : public Subsystem {
 public:
  const char* name() const override { return "bpf_sockmap"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("bpf_sockmap");
    sk_ = kernel.New<SockmapSock>("bpf_sockmap_init");

    SyscallDesc attach;
    attach.name = "bpf$sockmap_attach";
    attach.subsystem = name();
    attach.args.push_back(ArgDesc::IntRange("prog_id", 1, 16));
    attach.fn = [this](Kernel& k, const std::vector<i64>& args) {
      return Attach(k, static_cast<u32>(args[0]));
    };
    kernel.table().Add(std::move(attach));

    SyscallDesc recv;
    recv.name = "bpf$sockmap_recv";
    recv.subsystem = name();
    recv.fn = [this](Kernel& k, const std::vector<i64>&) { return DataReady(k); };
    kernel.table().Add(std::move(recv));
  }

  // net/core/skmsg.c: sk_psock_init() + data_ready replacement. The buggy
  // order publishes the "verdict data_ready installed" flag while the psock
  // pointer store may still sit in the store buffer.
  long Attach(Kernel& k, u32 prog_id) {
    if (OSK_READ_ONCE(sk_->data_ready_installed) != 0) {
      return kEBusy;
    }
    Psock* p = k.New<Psock>("sk_psock_init");
    OSK_STORE(p->verdict_prog, prog_id);
    OSK_STORE(sk_->psock, p);
    if (fixed_) {
      OSK_SMP_WMB();
    }
    OSK_WRITE_ONCE(sk_->data_ready_installed, 1);
    return kOk;
  }

  // net/core/skmsg.c: sk_psock_verdict_data_ready() — invoked when data
  // arrives after the callback was installed.
  long DataReady(Kernel& k) {
    if (OSK_READ_ONCE(sk_->data_ready_installed) == 0) {
      return 0;  // default data_ready path
    }
    Psock* p = OSK_LOAD(sk_->psock);
    k.Deref(p, "sk_psock_verdict_data_ready");
    u64 n = OSK_LOAD(p->rx_count);
    OSK_STORE(p->rx_count, n + 1);
    return static_cast<long>(OSK_LOAD(p->verdict_prog));
  }

 private:
  SockmapSock* sk_ = nullptr;
  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeBpfSockmapSubsystem() {
  return std::make_unique<BpfSockmapSubsystem>();
}

}  // namespace ozz::osk
