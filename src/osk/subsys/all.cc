// Default subsystem set: every bug scenario of Tables 3 and 4.
#include "src/osk/kernel.h"
#include "src/osk/subsys/bpf_sockmap.h"
#include "src/osk/subsys/buffer_head.h"
#include "src/osk/subsys/fs_fdtable.h"
#include "src/osk/subsys/gsm.h"
#include "src/osk/subsys/mq_sbitmap.h"
#include "src/osk/subsys/nbd.h"
#include "src/osk/subsys/rcu.h"
#include "src/osk/subsys/rdma.h"
#include "src/osk/subsys/rds.h"
#include "src/osk/subsys/ringbuf.h"
#include "src/osk/subsys/seqlock.h"
#include "src/osk/subsys/smc.h"
#include "src/osk/subsys/synthetic.h"
#include "src/osk/subsys/timerwheel.h"
#include "src/osk/subsys/tls.h"
#include "src/osk/subsys/unix_sock.h"
#include "src/osk/subsys/vlan.h"
#include "src/osk/subsys/vmci.h"
#include "src/osk/subsys/watch_queue.h"
#include "src/osk/subsys/xsk.h"

namespace ozz::osk {

void InstallDefaultSubsystems(Kernel& kernel) {
  kernel.Install(MakeWatchQueueSubsystem());
  kernel.Install(MakeTlsSubsystem());
  kernel.Install(MakeRdsSubsystem());
  kernel.Install(MakeXskSubsystem());
  kernel.Install(MakeBpfSockmapSubsystem());
  kernel.Install(MakeSmcSubsystem());
  kernel.Install(MakeVmciSubsystem());
  kernel.Install(MakeGsmSubsystem());
  kernel.Install(MakeVlanSubsystem());
  kernel.Install(MakeUnixSockSubsystem());
  kernel.Install(MakeNbdSubsystem());
  kernel.Install(MakeMqSbitmapSubsystem());
  kernel.Install(MakeFsFdtableSubsystem());
  kernel.Install(MakeRingbufSubsystem());
  kernel.Install(MakeSeqlockSubsystem());
  kernel.Install(MakeRdmaSubsystem());
  kernel.Install(MakeRcuSubsystem());
  kernel.Install(MakeBufferHeadSubsystem());
  kernel.Install(MakeTimerwheelSubsystem());
  kernel.Install(MakeSyntheticSubsystem());
}

}  // namespace ozz::osk
