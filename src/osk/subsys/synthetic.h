#ifndef OZZ_SRC_OSK_SUBSYS_SYNTHETIC_H_
#define OZZ_SRC_OSK_SUBSYS_SYNTHETIC_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// The synthetic store-buffering (SB) bug of the paper's Rust example
// (Figure 10), transliterated: two threads perform relaxed
//   t1: x = 1; r1 = y;      t2: y = 1; r2 = x;
// and the invariant r1 == 1 || r2 == 1 is asserted once both finished.
// Store-load reordering (a store delayed past the thread's own later load)
// yields r1 == r2 == 0 — the only scenario in the suite that requires
// store-load (not store-store) emulation. Fixed key: "synthetic"
// (each thread gets an smp_mb between its store and load).
std::unique_ptr<Subsystem> MakeSyntheticSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_SYNTHETIC_H_
