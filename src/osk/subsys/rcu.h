#ifndef OZZ_SRC_OSK_SUBSYS_RCU_H_
#define OZZ_SRC_OSK_SUBSYS_RCU_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// RCU-style publish/subscribe: the updater initializes a fresh item and
// publishes it through a shared pointer; lockless readers chase the pointer
// with rcu_dereference() — a marked load plus an *address dependency*, no
// barrier. The readers are correct in both forms: the dependency chain (not
// an acquire) is what orders the dereference after the pointer load under
// every model that relaxes load-load. The planted bug is on the other side:
// the buggy updater publishes with a plain store (rcu_assign_pointer minus
// its smp_store_release), so the publish can commit before the item's
// initializing stores drain and a reader dereferences poison — the classic
// missing-release publish bug. Fixed key: "rcu".
std::unique_ptr<Subsystem> MakeRcuSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_RCU_H_
