#ifndef OZZ_SRC_OSK_SUBSYS_RDMA_H_
#define OZZ_SRC_OSK_SUBSYS_RDMA_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// drivers/infiniband/hw/irdma (paper §4.5, "Concurrent accesses with
// hardware"): the driver polls a completion queue the device DMA-writes.
// The device writes the CQE payload then its valid bit; the driver checks
// the valid bit and reads the payload *without a read barrier* — load-load
// reordering lets it read a stale payload ("RDMA/irdma: Add missing read
// barriers"). The device is modeled as a DMA engine syscall running
// concurrently, exactly the setup the paper says OEMU can handle given a
// way to drive the hardware. Fixed key: "rdma".
std::unique_ptr<Subsystem> MakeRdmaSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_RDMA_H_
