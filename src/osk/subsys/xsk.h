#ifndef OZZ_SRC_OSK_SUBSYS_XSK_H_
#define OZZ_SRC_OSK_SUBSYS_XSK_H_

#include <memory>

namespace ozz::osk {

class Subsystem;

// net/xdp (AF_XDP sockets): xsk_bind() publishes the socket state flag before
// the rx/tx rings are visible (missing smp_wmb). Readers crash on the
// unpublished rings: xsk_poll (Table 3 Bug #4) and xsk_generic_xmit (Bug #7);
// the same pattern underlies Table 4 #3/#4. Fixed key: "xsk".
std::unique_ptr<Subsystem> MakeXskSubsystem();

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SUBSYS_XSK_H_
