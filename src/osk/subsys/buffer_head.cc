// fs/buffer buffer-head subsystem (paper reference [82]).
#include "src/osk/subsys/buffer_head.h"

#include "src/oemu/cell.h"
#include "src/osk/bitops.h"
#include "src/osk/kernel.h"

namespace ozz::osk {
namespace {

constexpr int kLockBit = 0;  // BH_Lock

struct BufferHead {
  oemu::Cell<u64> b_state;   // bit 0: locked
  oemu::Cell<u64> b_blocknr; // finalized while locked
};

// The page->buffers pointer is kept as an integer cell so ownership can be
// claimed with a fully-ordered xchg (standing in for private_lock), and
// writers pin the page with a reference count the freer respects (standing
// in for the page reference they hold in the real kernel).
struct Page {
  oemu::Cell<u64> buffers;  // BufferHead* bits, 0 = none
  oemu::Cell<u64> ref;      // writers in flight
};

BufferHead* AsBh(u64 bits) { return reinterpret_cast<BufferHead*>(bits); }
u64 AsBits(BufferHead* bh) { return reinterpret_cast<u64>(bh); }

}  // namespace

class BufferHeadSubsystem : public Subsystem {
 public:
  const char* name() const override { return "buffer"; }

  void Init(Kernel& kernel) override {
    fixed_ = kernel.IsFixed("buffer");
    page_ = kernel.New<Page>("buffer_page_init");

    SyscallDesc write;
    write.name = "bh$write";
    write.subsystem = name();
    write.args.push_back(ArgDesc::IntRange("blocknr", 1, 1 << 20));
    write.fn = [this](Kernel& k, const std::vector<i64>& args) {
      return WriteBuffer(k, static_cast<u64>(args[0]));
    };
    kernel.table().Add(std::move(write));

    SyscallDesc free_bufs;
    free_bufs.name = "bh$try_free";
    free_bufs.subsystem = name();
    free_bufs.fn = [this](Kernel& k, const std::vector<i64>&) { return TryToFreeBuffers(k); };
    kernel.table().Add(std::move(free_bufs));
  }

  // lock_buffer(); finalize; unlock_buffer(). The 2007 bug: unlock_buffer
  // cleared BH_Lock with a plain bitop, so the finalizing store could still
  // be in the store buffer when another CPU freed the buffer.
  long WriteBuffer(Kernel& k, u64 blocknr) {
    FunctionContext fn("unlock_buffer");
    // Pin the page (fully ordered, like get_page + lock_page): the freer
    // backs off while a writer is in flight.
    (void)OSK_RMW(page_->ref, oemu::RmwOrder::kFull, RmwFnAdd, 1ull);
    // ozz-lint: allow-mixed — modelled buffer_head code reads the head plain under the ref pin
    BufferHead* bh = AsBh(OSK_LOAD(page_->buffers));
    if (bh == nullptr) {
      bh = k.New<BufferHead>("alloc_buffer_head");
      // ozz-lint: allow-mixed — first attach; the ref RMW above serializes allocators
      OSK_STORE(page_->buffers, AsBits(bh));
    }
    k.Deref(bh, "lock_buffer");
    long ret = kOk;
    if (OSK_TEST_AND_SET_BIT_LOCK(bh->b_state, kLockBit)) {
      ret = kEBusy;  // lock_buffer would sleep; report busy instead
    } else {
      OSK_STORE(bh->b_blocknr, blocknr);  // finalize under the lock
      if (fixed_) {
        OSK_CLEAR_BIT_UNLOCK(bh->b_state, kLockBit);  // the memorder fix
      } else {
        OSK_CLEAR_BIT(bh->b_state, kLockBit);  // no ordering: the bug
      }
    }
    // put_page: a relaxed decrement, like atomic_dec — no ordering, so the
    // buggy form's finalizing store can still be in flight past it.
    (void)OSK_RMW(page_->ref, oemu::RmwOrder::kRelaxed, RmwFnAdd, ~0ull);
    return ret;
  }

  // try_to_free_buffers(): claims the page's buffers (the real code holds
  // private_lock; a fully-ordered xchg models that) and frees them once
  // unlocked.
  long TryToFreeBuffers(Kernel& k) {
    FunctionContext fn("try_to_free_buffers");
    if (OSK_READ_ONCE(page_->ref) != 0) {
      return kEBusy;  // a writer holds the page
    }
    BufferHead* bh =
        AsBh(OSK_RMW(page_->buffers, oemu::RmwOrder::kFull, RmwFnXchg, 0ull));
    if (bh == nullptr) {
      return 0;
    }
    if (OSK_TEST_BIT(bh->b_state, kLockBit)) {
      // ozz-lint: allow-mixed — put-back under the ref pin, mirroring the plain kernel store
      OSK_STORE(page_->buffers, AsBits(bh));  // still locked: put it back
      return kEBusy;
    }
    // drop_buffers(): account the buffer before releasing it.
    u64 blocknr = OSK_LOAD(bh->b_blocknr);
    // The unlocking CPU's finalizing store may still be in flight; when it
    // commits (at its next barrier/syscall exit) it lands in freed memory —
    // the commit-phase KASAN report.
    k.KmFree(bh, "try_to_free_buffers");
    return static_cast<long>(blocknr & 0x7fffffff);
  }

 private:
  Page* page_ = nullptr;
  bool fixed_ = false;
};

std::unique_ptr<Subsystem> MakeBufferHeadSubsystem() {
  return std::make_unique<BufferHeadSubsystem>();
}

}  // namespace ozz::osk
