#include "src/osk/syscall.h"

#include "src/base/check.h"

namespace ozz::osk {

void SyscallTable::Add(SyscallDesc desc) {
  OZZ_CHECK_MSG(Find(desc.name) == nullptr, "duplicate syscall name");
  OZZ_CHECK(desc.fn != nullptr);
  descs_.push_back(std::move(desc));
}

const SyscallDesc* SyscallTable::Find(std::string_view name) const {
  for (const SyscallDesc& d : descs_) {
    if (d.name == name) {
      return &d;
    }
  }
  return nullptr;
}

std::vector<const SyscallDesc*> SyscallTable::InSubsystem(std::string_view subsystem) const {
  std::vector<const SyscallDesc*> out;
  for (const SyscallDesc& d : descs_) {
    if (d.subsystem == subsystem) {
      out.push_back(&d);
    }
  }
  return out;
}

}  // namespace ozz::osk
