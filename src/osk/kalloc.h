// Slab-style kernel allocator with KASAN-grade bookkeeping.
//
// Objects are carved out of a private arena. The allocator keeps per-object
// metadata (bounds, liveness, allocation/free sites) so the KASAN oracle can
// classify any address into valid / freed / redzone, and it quarantines freed
// objects (no immediate reuse) so delayed stores that commit after a
// concurrent free are detectable — the double-free/UAF class of OOO bugs the
// paper highlights as invisible to in-vitro approaches (§3).
#ifndef OZZ_SRC_OSK_KALLOC_H_
#define OZZ_SRC_OSK_KALLOC_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>

#include "src/base/ids.h"

namespace ozz::osk {

// Poison byte written over freed objects (Linux's use-after-free poison).
inline constexpr u8 kFreePoison = 0x6b;
// A pointer loaded from poisoned memory looks like this.
inline constexpr u64 kPoisonPointer = 0x6b6b6b6b6b6b6b6bull;

enum class AddrClass : u8 {
  kUntracked,  // outside the arena (globals, stack, host memory)
  kValid,      // inside a live object
  kFreed,      // inside a freed (quarantined) object
  kRedzone,    // inside the arena but not inside any object
};

class Kalloc {
 public:
  struct Object {
    uptr addr = 0;
    std::size_t size = 0;
    bool live = false;
    std::string alloc_site;
    std::string free_site;
  };

  explicit Kalloc(std::size_t arena_bytes = 1u << 20);

  Kalloc(const Kalloc&) = delete;
  Kalloc& operator=(const Kalloc&) = delete;

  // Allocates `size` bytes, 16-byte aligned, with redzones on both sides.
  // Zeroed by default; with zero=false the contents keep the arena's poison
  // pattern, modelling a non-__GFP_ZERO kmalloc whose uninitialized fields
  // read back as garbage. Returns nullptr if the arena is exhausted.
  void* Alloc(std::size_t size, const char* site, bool zero = true);

  // Frees a pointer returned by Alloc. Returns false (without touching
  // state) on a double free or an invalid pointer so the caller can raise
  // the appropriate oops. The object is poisoned and quarantined.
  // (kSuccess, not kOk: the latter would shadow osk::kOk from syscall.h
  // under -Wshadow.)
  enum class FreeResult : u8 { kSuccess, kDoubleFree, kInvalid };
  FreeResult Free(void* ptr, const char* site);

  // Classifies an address for the KASAN oracle; fills `obj` when the address
  // maps into a tracked object.
  AddrClass Classify(uptr addr, const Object** obj = nullptr) const;

  bool InArena(uptr addr) const { return addr >= arena_begin_ && addr < arena_end_; }

  std::size_t live_objects() const { return live_objects_; }
  std::size_t bytes_used() const { return cursor_ - arena_begin_; }

 private:
  static constexpr std::size_t kAlign = 16;
  static constexpr std::size_t kRedzone = 16;

  std::unique_ptr<u8[]> arena_;
  uptr arena_begin_ = 0;
  uptr arena_end_ = 0;
  uptr cursor_ = 0;
  std::size_t live_objects_ = 0;
  // Keyed by object start address; covers live and quarantined objects.
  std::map<uptr, Object> objects_;
};

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_KALLOC_H_
