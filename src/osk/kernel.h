// The simulated kernel (osk = "operating system kernel", the substrate the
// paper instruments).
//
// A Kernel owns the allocator, the bug-detecting oracles (KASAN, lockdep,
// assertions, hung-task), the syscall table, the generic resource registry
// (file-descriptor-like handles), and the installed subsystems. It wires the
// oracles into the active OEMU runtime via the access-check hook and raises
// OopsExceptions on malfunction, exactly the oracle surface OZZ relies on in
// §4.4.
//
// Per KernelConfig, each subsystem is built either in its historical *buggy*
// form (memory barrier missing — the form OZZ hunts) or its *fixed* form
// (patch applied), which is how the reproduction "reverts patches" for the
// Table 4 experiments.
#ifndef OZZ_SRC_OSK_KERNEL_H_
#define OZZ_SRC_OSK_KERNEL_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/base/ids.h"
#include "src/oemu/runtime.h"
#include "src/osk/kalloc.h"
#include "src/osk/kasan.h"
#include "src/osk/lockdep.h"
#include "src/osk/oops.h"
#include "src/osk/syscall.h"
#include "src/rt/machine.h"

namespace ozz::osk {

class Kernel;

// A kernel subsystem: owns its state and registers its syscalls.
class Subsystem {
 public:
  virtual ~Subsystem() = default;
  virtual const char* name() const = 0;
  // Called once at install time; allocate state and register syscalls.
  virtual void Init(Kernel& kernel) = 0;
};

struct KernelConfig {
  // Subsystems whose missing-barrier patch is applied. Everything else is
  // built in its historical buggy form.
  std::set<std::string> fixed;
  // Forces per-CPU slot resolution to CPU 0, emulating the thread migration
  // required by the MQ/sbitmap bug (§6.2's "manual modification").
  bool percpu_migration_hack = false;
};

class Kernel {
 public:
  explicit Kernel(KernelConfig config = {});
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // Wires the KASAN hook into `runtime` and remembers `machine` for crash
  // teardown. Either may be null (e.g. uninstrumented benchmarks).
  void Attach(rt::Machine* machine, oemu::Runtime* runtime);

  const KernelConfig& config() const { return config_; }
  bool IsFixed(std::string_view subsystem) const {
    return config_.fixed.count(std::string(subsystem)) > 0;
  }

  Kalloc& alloc() { return alloc_; }
  Kasan& kasan() { return *kasan_; }
  Lockdep& lockdep() { return *lockdep_; }
  SyscallTable& table() { return table_; }
  const SyscallTable& table() const { return table_; }
  rt::Machine* machine() { return machine_; }
  oemu::Runtime* runtime() { return runtime_; }

  // ---- Allocation helpers ----
  // Allocator calls fence the calling thread's store buffer (the real
  // allocator's internal locking does the same); see kernel.cc.
  void AllocatorFence();
  void* KmAlloc(std::size_t size, const char* site);
  // kmalloc without __GFP_ZERO: contents are the arena poison pattern, so a
  // published-before-initialized field reads back as a wild pointer (the
  // general-protection-fault bug class, Table 3 Bug #3).
  void* KmAllocUninit(std::size_t size, const char* site);
  void KmFree(void* ptr, const char* site);

  template <typename T, typename... Args>
  T* New(const char* site, Args&&... args) {
    void* mem = KmAlloc(sizeof(T), site);
    return new (mem) T(std::forward<Args>(args)...);
  }
  template <typename T>
  void Delete(T* ptr, const char* site) {
    if (ptr != nullptr) {
      ptr->~T();
      KmFree(ptr, site);
    }
  }

  // ---- Oracles ----
  // Records the first crash, tears down the machine's other threads, and
  // throws OopsException to unwind the caller. Exception: when invoked while
  // another exception is already unwinding (a destructor touching shared
  // state), it suppresses the report and returns instead of terminating.
  void RaiseOops(OopsReport report);

  // Validates a pointer loaded from shared state before it is dereferenced;
  // raises the appropriate oops (null-deref / GPF / UAF) if invalid.
  template <typename T>
  T* Deref(T* ptr, const char* context) {
    kasan_->CheckPointer(reinterpret_cast<uptr>(ptr), context);
    return ptr;
  }

  // Deref variant for a pointer about to be written through.
  template <typename T>
  T* DerefWrite(T* ptr, const char* context) {
    kasan_->CheckPointerWrite(reinterpret_cast<uptr>(ptr), context);
    return ptr;
  }

  // Kernel BUG_ON: raises an assertion oops when `cond` is true.
  void BugOn(bool cond, const char* what);

  bool crashed() const { return crash_.has_value(); }
  const OopsReport* crash() const { return crash_ ? &*crash_ : nullptr; }

  // ---- Syscall dispatch ----
  long Invoke(const SyscallDesc& desc, const std::vector<i64>& args);
  long InvokeByName(std::string_view name, const std::vector<i64>& args);

  // ---- Resource registry (fd-like handles) ----
  i64 RegisterResource(const std::string& type, void* obj);
  void* GetResource(const std::string& type, i64 handle) const;
  std::size_t ResourceCount(const std::string& type) const;

  // ---- Subsystems ----
  void Install(std::unique_ptr<Subsystem> subsystem);
  Subsystem* Find(std::string_view name);
  std::vector<std::string> SubsystemNames() const;

  // ---- Interrupts ----
  // request_irq(): registers a hardirq handler. Handlers run on the CPU that
  // takes the interrupt (rt::Machine::InterruptSelf), between the two
  // store-buffer flushes of a delivery. Re-registering a name replaces the
  // previous handler.
  using IrqHandlerFn = std::function<void(Kernel&)>;
  void RequestIrq(const std::string& name, IrqHandlerFn handler);
  void FreeIrq(const std::string& name);
  std::size_t IrqHandlerCount() const { return irq_handlers_.size(); }

  // Runs every registered handler on the calling thread. Wired into the
  // machine's irq dispatch hook by Attach(); callable directly in
  // machine-less unit tests.
  void DispatchIrq();

  // local_irq_save / local_irq_restore. With a machine attached these
  // delegate to rt::Machine (deferring virtual interrupts while masked);
  // without one (profiling runs, benchmarks) they keep a plain depth counter
  // so the balance contract still holds.
  void LocalIrqSave();
  void LocalIrqRestore();
  bool IrqsDisabled() const;

 private:
  KernelConfig config_;
  Kalloc alloc_;
  std::unique_ptr<Kasan> kasan_;
  std::unique_ptr<Lockdep> lockdep_;
  SyscallTable table_;
  rt::Machine* machine_ = nullptr;
  oemu::Runtime* runtime_ = nullptr;
  std::optional<OopsReport> crash_;
  std::map<std::string, std::vector<void*>> resources_;
  std::vector<std::unique_ptr<Subsystem>> subsystems_;
  std::vector<std::pair<std::string, IrqHandlerFn>> irq_handlers_;
  int host_irq_depth_ = 0;  // machine-less LocalIrqSave nesting
};

// Installs the full default subsystem set (all bug scenarios).
void InstallDefaultSubsystems(Kernel& kernel);

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_KERNEL_H_
