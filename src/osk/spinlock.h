// Instrumented spinlock with lockdep and hung-task oracles.
//
// Built on the acquire/release bitops so OEMU sees (and correctly refuses to
// reorder across) its ordering: test_and_set_bit_lock is an acquire RMW and
// clear_bit_unlock a release RMW. Contended acquisition yields to the
// scheduler; a bounded spin that never succeeds raises a hung-task oops —
// the denial-of-service symptom class of OOO bugs ([8] in the paper).
#ifndef OZZ_SRC_OSK_SPINLOCK_H_
#define OZZ_SRC_OSK_SPINLOCK_H_

#include "src/oemu/cell.h"
#include "src/osk/bitops.h"
#include "src/osk/kernel.h"

namespace ozz::osk {

class SpinLock {
 public:
  SpinLock() = default;

  // Registers a lockdep class; call once after construction.
  void InitClass(Kernel& kernel, const char* name) {
    cls_ = kernel.lockdep().RegisterClass(name);
    cls_valid_ = true;
  }

  void Lock(Kernel& kernel) {
    ThreadId tid = oemu::Runtime::CurrentThreadId();
    if (cls_valid_) {
      kernel.lockdep().OnAcquire(tid, cls_);
    }
    for (int spins = 0; spins < kSpinBound; ++spins) {
      if (!OSK_TEST_AND_SET_BIT_LOCK(word_, 0)) {
        return;
      }
      rt::Machine* m = rt::Machine::Current();
      if (m == nullptr || !m->Yield()) {
        // Nobody else can release the lock: self-deadlock / lost unlock.
        break;
      }
    }
    OopsReport report;
    report.kind = OopsKind::kHungTask;
    report.title = "INFO: task hung acquiring spinlock";
    kernel.RaiseOops(std::move(report));
  }

  bool TryLock(Kernel& kernel) {
    if (OSK_TEST_AND_SET_BIT_LOCK(word_, 0)) {
      return false;
    }
    if (cls_valid_) {
      kernel.lockdep().OnAcquire(oemu::Runtime::CurrentThreadId(), cls_);
    }
    return true;
  }

  void Unlock(Kernel& kernel) {
    if (cls_valid_) {
      kernel.lockdep().OnRelease(oemu::Runtime::CurrentThreadId(), cls_);
    }
    OSK_CLEAR_BIT_UNLOCK(word_, 0);
  }

  // spin_lock_irqsave / spin_unlock_irqrestore: masks local interrupts for
  // the whole critical section, making the lock safe to share with a hardirq
  // handler on the same CPU. Must be paired; interrupts deferred while masked
  // deliver at UnlockIrqRestore.
  void LockIrqSave(Kernel& kernel) {
    kernel.LocalIrqSave();  // ozz-lint: allow-irq (restored in UnlockIrqRestore)
    Lock(kernel);
  }

  void UnlockIrqRestore(Kernel& kernel) {
    Unlock(kernel);
    kernel.LocalIrqRestore();  // ozz-lint: allow-irq (saved in LockIrqSave)
  }

 private:
  static constexpr int kSpinBound = 256;

  oemu::Cell<u64> word_{0};
  LockClassId cls_ = 0;
  bool cls_valid_ = false;
};

// RAII guard for scoped critical sections.
class SpinGuard {
 public:
  SpinGuard(Kernel& kernel, SpinLock& lock) : kernel_(kernel), lock_(lock) {
    lock_.Lock(kernel_);  // ozz-lint: allow-imbalance (released in ~SpinGuard)
  }
  ~SpinGuard() { lock_.Unlock(kernel_); }

  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  Kernel& kernel_;
  SpinLock& lock_;
};

// RAII guard for irq-safe critical sections (spin_lock_irqsave scope).
class SpinGuardIrq {
 public:
  SpinGuardIrq(Kernel& kernel, SpinLock& lock) : kernel_(kernel), lock_(lock) {
    // ozz-lint: allow-imbalance, ozz-lint: allow-irq (released in ~SpinGuardIrq)
    lock_.LockIrqSave(kernel_);
  }
  // ozz-lint: allow-irq (the matching save is in the constructor)
  ~SpinGuardIrq() { lock_.UnlockIrqRestore(kernel_); }

  SpinGuardIrq(const SpinGuardIrq&) = delete;
  SpinGuardIrq& operator=(const SpinGuardIrq&) = delete;

 private:
  Kernel& kernel_;
  SpinLock& lock_;
};

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_SPINLOCK_H_
