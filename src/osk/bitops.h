// Linux-style atomic bit operations on instrumented cells.
//
// Ordering follows the kernel's rules (Documentation/atomic_bitops.txt):
//   - test_and_set_bit / test_and_clear_bit return a value => fully ordered;
//   - set_bit / clear_bit are relaxed RMWs (no barrier) — OEMU may therefore
//     reorder earlier plain stores past them, which is exactly the RDS
//     custom-lock bug of Figure 8;
//   - clear_bit_unlock is a release RMW, test_and_set_bit_lock an acquire
//     RMW — the correct lock-shaped variants.
#ifndef OZZ_SRC_OSK_BITOPS_H_
#define OZZ_SRC_OSK_BITOPS_H_

#include "src/oemu/cell.h"

namespace ozz::osk {

inline u64 RmwFnOr(u64 old, u64 operand) { return old | operand; }
inline u64 RmwFnAndNot(u64 old, u64 operand) { return old & ~operand; }
inline u64 RmwFnXchg(u64 /*old*/, u64 operand) { return operand; }
inline u64 RmwFnAdd(u64 old, u64 operand) { return old + operand; }

}  // namespace ozz::osk

// All macros operate on a Cell<u64> and a bit index.

#define OSK_TEST_BIT(cell, bit) (((OSK_READ_ONCE(cell) >> (bit)) & 1ull) != 0)

// Fully ordered; returns the previous bit value.
#define OSK_TEST_AND_SET_BIT(cell, bit)                                               \
  (((OSK_RMW((cell), ::ozz::oemu::RmwOrder::kFull, ::ozz::osk::RmwFnOr,               \
             1ull << (bit)) >>                                                        \
    (bit)) &                                                                          \
    1ull) != 0)

#define OSK_TEST_AND_CLEAR_BIT(cell, bit)                                             \
  (((OSK_RMW((cell), ::ozz::oemu::RmwOrder::kFull, ::ozz::osk::RmwFnAndNot,           \
             1ull << (bit)) >>                                                        \
    (bit)) &                                                                          \
    1ull) != 0)

// Acquire-ordered try-lock shape; returns the previous bit value.
#define OSK_TEST_AND_SET_BIT_LOCK(cell, bit)                                          \
  (((OSK_RMW((cell), ::ozz::oemu::RmwOrder::kAcquire, ::ozz::osk::RmwFnOr,            \
             1ull << (bit)) >>                                                        \
    (bit)) &                                                                          \
    1ull) != 0)

// Relaxed: no ordering against surrounding accesses.
#define OSK_SET_BIT(cell, bit) \
  ((void)OSK_RMW((cell), ::ozz::oemu::RmwOrder::kRelaxed, ::ozz::osk::RmwFnOr, 1ull << (bit)))

#define OSK_CLEAR_BIT(cell, bit)                                                      \
  ((void)OSK_RMW((cell), ::ozz::oemu::RmwOrder::kRelaxed, ::ozz::osk::RmwFnAndNot,    \
                 1ull << (bit)))

// Release-ordered: all prior accesses complete before the bit clears.
#define OSK_CLEAR_BIT_UNLOCK(cell, bit)                                               \
  ((void)OSK_RMW((cell), ::ozz::oemu::RmwOrder::kRelease, ::ozz::osk::RmwFnAndNot,    \
                 1ull << (bit)))

#endif  // OZZ_SRC_OSK_BITOPS_H_
