// Kernel crash (oops) model.
//
// Bug-detecting oracles of the simulated kernel — the KASAN-style shadow
// checker, the null-pointer dereference check, lockdep, hung-task detection
// and explicit kernel assertions — all funnel into an OopsReport. Raising an
// oops unwinds the offending simulated thread with an OopsException (the
// reproduction's kernel panic), kills the remaining simulated threads, and
// leaves the report on the Kernel for the fuzzer to collect. Crash titles
// mirror the syzkaller-style titles of Table 3.
#ifndef OZZ_SRC_OSK_OOPS_H_
#define OZZ_SRC_OSK_OOPS_H_

#include <string>

#include "src/base/ids.h"

namespace ozz::osk {

enum class OopsKind : u8 {
  kNullDeref,       // BUG: unable to handle kernel NULL pointer dereference
  kGeneralProtection,  // general protection fault (wild/poisoned pointer)
  kKasanUaf,        // KASAN: use-after-free
  kKasanOob,        // KASAN: slab-out-of-bounds
  kKasanNullPtrWrite,  // KASAN: null-ptr-deref Write
  kDoubleFree,      // double free detected by the allocator
  kLockdep,         // possible circular locking dependency
  kHungTask,        // INFO: task hung (lost wakeup / deadlock)
  kAssert,          // kernel BUG_ON / assertion failure
  kDataCorruption,  // consistency check failed (wrong value observed)
};

const char* OopsKindName(OopsKind kind);

struct OopsReport {
  OopsKind kind = OopsKind::kAssert;
  std::string title;     // dedup key, e.g. "BUG: ... NULL pointer dereference in tls_setsockopt"
  std::string detail;    // free-form context for the human report
  InstrId instr = kInvalidInstr;  // offending access, when known
  ThreadId thread = kAnyThread;
  uptr addr = 0;
};

// Thrown to unwind a simulated thread after an oops. Executors catch it at
// the syscall boundary; it never escapes to the host.
struct OopsException {
  OopsReport report;
};

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_OOPS_H_
