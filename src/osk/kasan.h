// KASAN-style dynamic memory-safety oracle.
//
// Installed as the OEMU access-check hook: every instrumented load/store is
// classified against the allocator's object map at execute time, and every
// delayed store again at commit time (a store that was legal when the
// instruction ran may land in freed memory once reordered — the in-vivo
// advantage of §3). Null and wild pointers are reported with the kernel's
// oops titles rather than KASAN titles, mirroring how Linux reports them.
#ifndef OZZ_SRC_OSK_KASAN_H_
#define OZZ_SRC_OSK_KASAN_H_

#include <functional>
#include <string>

#include "src/oemu/event.h"
#include "src/oemu/runtime.h"
#include "src/osk/kalloc.h"
#include "src/osk/oops.h"

namespace ozz::osk {

// RAII marker naming the kernel function currently executing on this thread;
// KASAN reports use it for their "... in <function>" titles, like the real
// KASAN symbolizes the faulting frame. Nestable.
class FunctionContext {
 public:
  explicit FunctionContext(const char* name);
  ~FunctionContext();

  FunctionContext(const FunctionContext&) = delete;
  FunctionContext& operator=(const FunctionContext&) = delete;

  // Innermost context of the calling thread, or nullptr.
  static const char* Current();
};

class Kasan {
 public:
  using RaiseFn = std::function<void(OopsReport)>;  // must not return

  Kasan(const Kalloc* alloc, RaiseFn raise) : alloc_(alloc), raise_(std::move(raise)) {}

  // OEMU access-check hook; raises an oops (does not return) on a violation.
  void Check(uptr addr, u32 size, oemu::AccessType type, InstrId instr,
             oemu::Runtime::CheckPhase phase);

  // Explicit pointer validation used by subsystems before dereferencing a
  // pointer obtained from shared state. `context` is the function name used
  // in the crash title ("... NULL pointer dereference in <context>").
  void CheckPointer(uptr ptr, const char* context);

  // Same, but for a pointer about to be written through; a null pointer
  // reports as "KASAN: null-ptr-deref Write in <context>" (Table 3 Bug #10).
  void CheckPointerWrite(uptr ptr, const char* context);

  u64 reports_suppressed_after_first() const { return suppressed_; }

 private:
  const Kalloc* alloc_;
  RaiseFn raise_;
  u64 suppressed_ = 0;
};

}  // namespace ozz::osk

#endif  // OZZ_SRC_OSK_KASAN_H_
