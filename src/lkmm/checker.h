// LKMM compliance checker (§3.3, Appendix §10.1).
//
// OEMU must never reorder memory accesses in a way no architecture supported
// by Linux would — the seven ppo cases of the LKMM. This checker is an
// *independent* validator: given the per-thread event traces recorded by the
// runtime and the global store history, it re-derives the ordering facts and
// reports violations. Property tests drive random programs through OEMU under
// random reorder specs and assert the checker stays silent; the litmus suite
// (litmus.h) additionally asserts that *allowed* weak behaviours are
// reachable.
//
// Checks implemented (mapping to §10.1):
//   kCoherence      — same-thread stores to one location commit in program
//                     order (coherence; underpins Cases 1/2/5).
//   kStoreBarrier   — no store executed before a store-ordering barrier
//                     (wmb/mb/release/RMW-full) commits after it (Cases 1,2,5).
//   kLoadWindow     — no load returns a value older than the versioning
//                     window start at its execution (Cases 1,3,4,6).
//   kLoadStore      — a store never becomes visible before a program-earlier
//                     load of the same thread executed (Case 7).
#ifndef OZZ_SRC_LKMM_CHECKER_H_
#define OZZ_SRC_LKMM_CHECKER_H_

#include <map>
#include <string>
#include <vector>

#include "src/base/ids.h"
#include "src/oemu/event.h"
#include "src/oemu/store_history.h"

namespace ozz::lkmm {

enum class ViolationKind : u8 {
  kCoherence,
  kStoreBarrier,
  kLoadWindow,
  kLoadStore,
};

struct Violation {
  ViolationKind kind;
  ThreadId thread = kAnyThread;
  InstrId instr = kInvalidInstr;
  std::string detail;
};

class Checker {
 public:
  // `traces` maps thread id -> the full event trace of that thread
  // (including kCommit events emitted when delayed stores drain).
  std::vector<Violation> Validate(const std::map<ThreadId, oemu::Trace>& traces,
                                  const oemu::StoreHistory& history) const;

 private:
  void CheckThread(ThreadId thread, const oemu::Trace& trace,
                   const oemu::StoreHistory& history, std::vector<Violation>* out) const;
  void CheckCoherence(const oemu::StoreHistory& history, std::vector<Violation>* out) const;
};

const char* ViolationKindName(ViolationKind kind);

}  // namespace ozz::lkmm

#endif  // OZZ_SRC_LKMM_CHECKER_H_
