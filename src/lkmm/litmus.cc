#include "src/lkmm/litmus.h"

#include <map>
#include <memory>
#include <string>

#include "src/base/check.h"
#include "src/oemu/runtime.h"
#include "src/rt/machine.h"

namespace ozz::lkmm {
namespace {

struct TrackedAccess {
  InstrId instr;
  u32 occurrence;
  oemu::AccessType type;
};

// Profiles a body in isolation to learn its dynamic access list.
std::vector<TrackedAccess> ProfileBody(const LitmusBody& body, LitmusEnv& env) {
  oemu::Runtime rt;
  rt.Activate(nullptr);
  env.Reset();
  ThreadId tid = oemu::Runtime::CurrentThreadId();
  rt.OnSyscallEnter(tid);
  rt.StartRecording(tid);
  LitmusRegs regs{};
  body(env, regs);
  rt.OnSyscallExit(tid);
  oemu::Trace trace = rt.StopRecording(tid);
  rt.Deactivate();

  std::vector<TrackedAccess> out;
  for (const oemu::Event& e : trace) {
    if (e.IsAccess()) {
      out.push_back(TrackedAccess{e.instr, e.occurrence, e.access});
    }
  }
  return out;
}

// Applies subset `bits` of the delayable stores / versionable loads.
void ApplySpec(oemu::Runtime& rt, ThreadId tid, const std::vector<TrackedAccess>& accesses,
               u32 store_bits, u32 load_bits) {
  u32 store_idx = 0;
  u32 load_idx = 0;
  for (const TrackedAccess& a : accesses) {
    if (a.type == oemu::AccessType::kStore) {
      if ((store_bits >> store_idx) & 1u) {
        rt.DelayStoreAt(tid, a.instr, a.occurrence);
      }
      ++store_idx;
    } else {
      if ((load_bits >> load_idx) & 1u) {
        rt.ReadOldValueAt(tid, a.instr, a.occurrence);
      }
      ++load_idx;
    }
  }
}

// Per-access reorder spec: bit i of `bits` targets the thread's i-th dynamic
// access (delay if a store, version if a load).
void ApplyBitSpec(oemu::Runtime& rt, ThreadId tid, const std::vector<TrackedAccess>& accesses,
                  u64 bits) {
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    if (((bits >> i) & 1) == 0) {
      continue;
    }
    const TrackedAccess& a = accesses[i];
    if (a.type == oemu::AccessType::kStore) {
      rt.DelayStoreAt(tid, a.instr, a.occurrence);
    } else {
      rt.ReadOldValueAt(tid, a.instr, a.occurrence);
    }
  }
}

}  // namespace

LitmusNResult ExploreLitmusN(const std::vector<LitmusBody>& threads,
                             const LitmusOptions& options) {
  LitmusNResult result;
  Checker checker;
  auto env = std::make_unique<LitmusEnv>();
  const std::size_t n = threads.size();
  OZZ_CHECK(n >= 2 && n <= 6);

  std::vector<std::vector<TrackedAccess>> accs;
  accs.reserve(n);
  for (const LitmusBody& body : threads) {
    accs.push_back(ProfileBody(body, *env));
  }

  // Per-access spec bits, concatenated across threads. Capped so the classic
  // shapes stay exhaustive without blowing up.
  std::vector<std::size_t> bit_offset(n + 1, 0);
  for (std::size_t t = 0; t < n; ++t) {
    bit_offset[t + 1] = bit_offset[t] + accs[t].size();
  }
  const std::size_t total_bits = bit_offset[n];
  OZZ_CHECK_MSG(total_bits <= 14, "litmus program too large for exhaustive N-thread specs");
  const u64 spec_combos = 1ull << total_bits;

  for (u64 combo = 0; combo < spec_combos; ++combo) {
    for (std::size_t first = 0; first < n; ++first) {
      const std::vector<TrackedAccess>& facc = accs[first];
      for (std::size_t sw = 0; sw <= facc.size() * 2; ++sw) {
        for (std::size_t next = 0; next < n; ++next) {
          if (sw > 0 && next == first) {
            continue;
          }
          if (sw == 0 && next != (first + 1) % n) {
            continue;  // no switch point: next is irrelevant, run once
          }
          env->Reset();
          oemu::Runtime rt;
          rt::Machine machine(static_cast<int>(n));
          rt.Activate(&machine);

          std::vector<LitmusRegs> regs(n);
          for (std::size_t t = 0; t < n; ++t) {
            const LitmusBody* body = &threads[t];
            machine.AddThread("litmus" + std::to_string(t), static_cast<CpuId>(t),
                              [&, t, body] {
                                oemu::Runtime& art = *oemu::Runtime::Active();
                                ThreadId tid = oemu::Runtime::CurrentThreadId();
                                art.OnSyscallEnter(tid);
                                (*body)(*env, regs[t]);
                                art.OnSyscallExit(tid);
                              });
            u64 bits = (combo >> bit_offset[t]) & ((1ull << accs[t].size()) - 1);
            if (!options.allow_delayed_stores || !options.allow_versioned_loads) {
              u64 mask = 0;
              for (std::size_t i = 0; i < accs[t].size(); ++i) {
                bool is_store = accs[t][i].type == oemu::AccessType::kStore;
                bool allowed = is_store ? options.allow_delayed_stores
                                        : options.allow_versioned_loads;
                mask |= allowed ? (1ull << i) : 0;
              }
              bits &= mask;
            }
            ApplyBitSpec(rt, static_cast<ThreadId>(t), accs[t], bits);
            rt.StartRecording(static_cast<ThreadId>(t));
          }

          rt::SchedPlan plan;
          plan.first = static_cast<ThreadId>(first);
          if (sw > 0) {
            const TrackedAccess& a = facc[(sw - 1) / 2];
            rt::SchedPoint pt;
            pt.thread = static_cast<ThreadId>(first);
            pt.instr = a.instr;
            pt.occurrence = a.occurrence;
            pt.when = (sw % 2 == 1) ? rt::SwitchWhen::kBeforeAccess
                                    : rt::SwitchWhen::kAfterAccess;
            pt.next = static_cast<ThreadId>(next);
            plan.points.push_back(pt);
          }
          machine.SetPlan(plan);
          machine.Run();

          std::map<ThreadId, oemu::Trace> traces;
          for (std::size_t t = 0; t < n; ++t) {
            traces[static_cast<ThreadId>(t)] = rt.StopRecording(static_cast<ThreadId>(t));
          }
          if (options.check_lkmm) {
            std::vector<Violation> v = checker.Validate(traces, rt.history());
            result.violations.insert(result.violations.end(), v.begin(), v.end());
          }
          rt.Deactivate();

          LitmusNOutcome outcome;
          for (std::size_t t = 0; t < n; ++t) {
            for (u64 r : regs[t]) {
              outcome.regs.push_back(r);
            }
          }
          result.outcomes.insert(std::move(outcome));
          ++result.executions;
        }
      }
    }
  }
  return result;
}

LitmusResult ExploreLitmus(const LitmusBody& t0, const LitmusBody& t1,
                           const LitmusOptions& options) {
  LitmusResult result;
  Checker checker;
  auto env = std::make_unique<LitmusEnv>();

  const std::vector<TrackedAccess> acc0 = ProfileBody(t0, *env);
  const std::vector<TrackedAccess> acc1 = ProfileBody(t1, *env);
  OZZ_CHECK_MSG(acc0.size() <= options.max_tracked_accesses &&
                    acc1.size() <= options.max_tracked_accesses,
                "litmus body too large for exhaustive exploration");

  auto count_type = [](const std::vector<TrackedAccess>& v, oemu::AccessType t) {
    u32 n = 0;
    for (const TrackedAccess& a : v) {
      n += a.type == t ? 1 : 0;
    }
    return n;
  };

  const std::array<const std::vector<TrackedAccess>*, 2> accs{&acc0, &acc1};
  const std::array<const LitmusBody*, 2> bodies{&t0, &t1};

  for (int first = 0; first < 2; ++first) {
    const std::vector<TrackedAccess>& facc = *accs[static_cast<std::size_t>(first)];
    u32 fstores =
        options.allow_delayed_stores ? count_type(facc, oemu::AccessType::kStore) : 0;
    u32 floads =
        options.allow_versioned_loads ? count_type(facc, oemu::AccessType::kLoad) : 0;

    // Switch points: none (sequential) or before/after the i-th access of the
    // thread that runs first. Only the first thread's spec matters — the
    // second runs to completion uninterrupted, so its own reordering is
    // invisible to the (already finished) first thread... except for delayed
    // stores observed when the first thread resumes; explore its specs too.
    const std::vector<TrackedAccess>& sacc = *accs[static_cast<std::size_t>(1 - first)];
    u32 sstores =
        options.allow_delayed_stores ? count_type(sacc, oemu::AccessType::kStore) : 0;
    u32 sloads =
        options.allow_versioned_loads ? count_type(sacc, oemu::AccessType::kLoad) : 0;

    for (u32 f_sbits = 0; f_sbits < (1u << fstores); ++f_sbits) {
      for (u32 f_lbits = 0; f_lbits < (1u << floads); ++f_lbits) {
        for (u32 s_sbits = 0; s_sbits < (1u << sstores); ++s_sbits) {
          for (u32 s_lbits = 0; s_lbits < (1u << sloads); ++s_lbits) {
            for (std::size_t sw = 0; sw <= facc.size() * 2; ++sw) {
              // sw == 0: no switch; otherwise switch before (odd) or after
              // (even) access (sw-1)/2 of the first thread.
              env->Reset();
              oemu::Runtime rt;
              rt::Machine machine(2);
              rt.Activate(&machine);

              std::array<LitmusRegs, 2> regs{};
              for (int t = 0; t < 2; ++t) {
                const LitmusBody* body = bodies[static_cast<std::size_t>(t)];
                machine.AddThread("litmus" + std::to_string(t), t, [&, t, body] {
                  oemu::Runtime& art = *oemu::Runtime::Active();
                  ThreadId tid = oemu::Runtime::CurrentThreadId();
                  art.OnSyscallEnter(tid);
                  (*body)(*env, regs[static_cast<std::size_t>(t)]);
                  art.OnSyscallExit(tid);
                });
              }

              ApplySpec(rt, first, facc, f_sbits, f_lbits);
              ApplySpec(rt, 1 - first, sacc, s_sbits, s_lbits);
              rt.StartRecording(0);
              rt.StartRecording(1);

              rt::SchedPlan plan;
              plan.first = first;
              if (sw > 0) {
                const TrackedAccess& a = facc[(sw - 1) / 2];
                rt::SchedPoint pt;
                pt.thread = first;
                pt.instr = a.instr;
                pt.occurrence = a.occurrence;
                pt.when = (sw % 2 == 1) ? rt::SwitchWhen::kBeforeAccess
                                        : rt::SwitchWhen::kAfterAccess;
                plan.points.push_back(pt);
              }
              machine.SetPlan(plan);
              machine.Run();

              std::map<ThreadId, oemu::Trace> traces;
              traces[0] = rt.StopRecording(0);
              traces[1] = rt.StopRecording(1);
              if (options.check_lkmm) {
                std::vector<Violation> v = checker.Validate(traces, rt.history());
                result.violations.insert(result.violations.end(), v.begin(), v.end());
              }
              rt.Deactivate();

              LitmusOutcome outcome{};
              for (std::size_t i = 0; i < kLitmusRegs; ++i) {
                outcome[i] = regs[0][i];
                outcome[kLitmusRegs + i] = regs[1][i];
              }
              result.outcomes.insert(outcome);
              ++result.executions;
            }
          }
        }
      }
    }
  }
  return result;
}

}  // namespace ozz::lkmm
