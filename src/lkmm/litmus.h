// Litmus-test harness.
//
// Runs classic two-thread litmus shapes (MP, SB, LB, CoRR, ...) under OEMU,
// exhaustively exploring OZZ-style executions: every delay-store subset of
// each thread's stores × every read-old subset of its loads × every
// single-switch interleaving, in both thread orders. Returns the set of
// observed register outcomes so tests can assert
//   * weak outcomes ARE reachable when the corresponding barrier is absent
//     (OEMU really emulates the reordering), and
//   * forbidden outcomes are NOT reachable when barriers/annotations are
//     present (LKMM compliance, §10.1),
// and every execution's trace is validated with lkmm::Checker.
#ifndef OZZ_SRC_LKMM_LITMUS_H_
#define OZZ_SRC_LKMM_LITMUS_H_

#include <array>
#include <functional>
#include <set>
#include <vector>

#include "src/lkmm/checker.h"
#include "src/oemu/cell.h"

namespace ozz::lkmm {

// Shared locations of a litmus program. Reset to zero before each execution.
struct LitmusEnv {
  oemu::Cell<u64> x;
  oemu::Cell<u64> y;
  oemu::Cell<u64> z;
  oemu::Cell<u64> w;

  void Reset() {
    x.set_raw(0);
    y.set_raw(0);
    z.set_raw(0);
    w.set_raw(0);
  }
};

inline constexpr std::size_t kLitmusRegs = 4;
using LitmusRegs = std::array<u64, kLitmusRegs>;

// A litmus thread body: performs instrumented accesses on the env and leaves
// observations in its registers. Must be deterministic.
using LitmusBody = std::function<void(LitmusEnv&, LitmusRegs&)>;

// One observed outcome: thread 0's registers followed by thread 1's.
using LitmusOutcome = std::array<u64, 2 * kLitmusRegs>;

struct LitmusOptions {
  bool allow_delayed_stores = true;
  bool allow_versioned_loads = true;
  bool check_lkmm = true;
  // Caps the per-thread store/load subset enumeration (2^n specs each).
  std::size_t max_tracked_accesses = 6;
};

struct LitmusResult {
  std::set<LitmusOutcome> outcomes;
  std::size_t executions = 0;
  std::vector<Violation> violations;  // non-empty means OEMU broke the LKMM

  bool Saw(const LitmusOutcome& o) const { return outcomes.count(o) > 0; }
};

// Explores t0 ∥ t1 and returns every outcome reached.
LitmusResult ExploreLitmus(const LitmusBody& t0, const LitmusBody& t1,
                           const LitmusOptions& options = {});

// N-thread exploration (WRC, IRIW, 2+2W, ...). Outcomes are the
// concatenated per-thread register files; exploration covers every
// per-thread reorder spec × every thread permutation as the run order ×
// a single switch point on the first-running thread. Exhaustive enough for
// the classic shapes at ≤4 threads / ≤3 accesses per thread.
struct LitmusNOutcome {
  std::vector<u64> regs;  // threads * kLitmusRegs
  bool operator<(const LitmusNOutcome& other) const { return regs < other.regs; }
};

struct LitmusNResult {
  std::set<LitmusNOutcome> outcomes;
  std::size_t executions = 0;
  std::vector<Violation> violations;

  bool Saw(const std::vector<u64>& regs) const {
    return outcomes.count(LitmusNOutcome{regs}) > 0;
  }
};

LitmusNResult ExploreLitmusN(const std::vector<LitmusBody>& threads,
                             const LitmusOptions& options = {});

}  // namespace ozz::lkmm

#endif  // OZZ_SRC_LKMM_LITMUS_H_
