#include "src/lkmm/checker.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <sstream>

#include "src/oemu/instr.h"

namespace ozz::lkmm {
namespace {

bool RangesOverlap(uptr a, u32 asz, uptr b, u32 bsz) {
  return a < b + bsz && b < a + asz;
}

struct PendingStore {
  InstrId instr;
  u32 occurrence;
  uptr addr;
  u32 size;
};

std::string Where(InstrId instr) { return oemu::InstrRegistry::Describe(instr); }

}  // namespace

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kCoherence:
      return "coherence";
    case ViolationKind::kStoreBarrier:
      return "store-barrier";
    case ViolationKind::kLoadWindow:
      return "load-window";
    case ViolationKind::kLoadStore:
      return "load-store-reorder";
  }
  return "?";
}

std::vector<Violation> Checker::Validate(const std::map<ThreadId, oemu::Trace>& traces,
                                         const oemu::StoreHistory& history) const {
  std::vector<Violation> out;
  for (const auto& [thread, trace] : traces) {
    CheckThread(thread, trace, history, &out);
  }
  CheckCoherence(history, &out);
  return out;
}

void Checker::CheckThread(ThreadId thread, const oemu::Trace& trace,
                          const oemu::StoreHistory& history,
                          std::vector<Violation>* out) const {
  std::vector<PendingStore> pending;  // executed, not yet committed
  u64 last_load_exec_time = 0;

  for (const oemu::Event& e : trace) {
    switch (e.kind) {
      case oemu::Event::Kind::kAccess: {
        if (e.IsStore()) {
          if (e.delayed) {
            pending.push_back(PendingStore{e.instr, e.occurrence, e.addr, e.size});
          }
          break;
        }
        // Load: validate the value against the versioning window (Cases 1,
        // 3, 4, 6). Skip loads forwarded from the thread's own pending
        // stores — their value is not derivable from the global history.
        last_load_exec_time = e.timestamp;
        bool forwarded = false;
        for (const PendingStore& p : pending) {
          if (RangesOverlap(p.addr, p.size, e.addr, e.size)) {
            forwarded = true;
            break;
          }
        }
        if (forwarded) {
          break;
        }
        // Candidate observation times: the window start and every commit to
        // this range inside (window, exec]. The load is legal iff its value
        // matches memory at one of them.
        std::set<u64> candidates{e.window};
        for (const oemu::HistoryEntry& h : history.entries()) {
          if (h.timestamp > e.window && h.timestamp <= e.timestamp &&
              RangesOverlap(h.addr, h.size, e.addr, e.size)) {
            candidates.insert(h.timestamp);
          }
        }
        bool matched = false;
        for (u64 t : candidates) {
          u8 bytes[8];
          // Start from current memory and rewind to time t. Assumes the
          // range was only mutated through instrumented stores (true for
          // the Cell-based litmus/property programs this checker serves).
          std::memcpy(bytes, reinterpret_cast<const void*>(e.addr), e.size);
          history.ValueAsOf(e.addr, e.size, t, bytes);
          u64 v = 0;
          for (u32 i = 0; i < e.size; ++i) {
            v |= static_cast<u64>(bytes[i]) << (8 * i);
          }
          if (v == e.value) {
            matched = true;
            break;
          }
        }
        if (!matched) {
          std::ostringstream detail;
          detail << "load at " << Where(e.instr) << " returned " << e.value
                 << " which memory never held in its window (" << e.window << ", "
                 << e.timestamp << "]";
          out->push_back(Violation{ViolationKind::kLoadWindow, thread, e.instr, detail.str()});
        }
        break;
      }
      case oemu::Event::Kind::kCommit: {
        auto it = std::find_if(pending.begin(), pending.end(), [&](const PendingStore& p) {
          return p.instr == e.instr && p.occurrence == e.occurrence;
        });
        if (it != pending.end()) {
          pending.erase(it);
        }
        // Case 7 (no load-store reordering) holds iff every store becomes
        // visible no earlier than the thread's program point, i.e. commits
        // are never timestamped before an already-executed load... which the
        // logical clock guarantees; assert it anyway as a checker invariant.
        if (e.timestamp < last_load_exec_time) {
          std::ostringstream detail;
          detail << "store at " << Where(e.instr) << " committed at " << e.timestamp
                 << " before a program-earlier load executed at " << last_load_exec_time;
          out->push_back(Violation{ViolationKind::kLoadStore, thread, e.instr, detail.str()});
        }
        break;
      }
      case oemu::Event::Kind::kBarrier: {
        // The conformance checker deliberately validates against the LKMM
        // reference table: litmus runs always execute under the lkmm
        // backend, and the check is *of* that backend. ozz-lint: allow-model
        oemu::BarrierClass cls = oemu::ClassOf(e.barrier);
        if (cls.orders_stores && !pending.empty()) {
          std::ostringstream detail;
          detail << oemu::BarrierTypeName(e.barrier) << " at " << Where(e.instr) << " passed "
                 << pending.size() << " uncommitted earlier store(s), first at "
                 << Where(pending.front().instr);
          out->push_back(
              Violation{ViolationKind::kStoreBarrier, thread, e.instr, detail.str()});
        }
        break;
      }
      case oemu::Event::Kind::kLock:
        break;  // bookkeeping for the static analyzer; no memory semantics
    }
  }
}

void Checker::CheckCoherence(const oemu::StoreHistory& history,
                             std::vector<Violation>* out) const {
  // Same-thread commits to overlapping ranges must not invert program order.
  // History is in commit order; program order within a thread follows the
  // logical clock of execution, which for same-location stores the runtime
  // must preserve (the coherence rule). Detect inversions via the recorded
  // old_value chain: each commit's old_value must equal the bytes the
  // previous overlapping commit left there.
  const auto& entries = history.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      const oemu::HistoryEntry& a = entries[i];
      const oemu::HistoryEntry& b = entries[j];
      if (a.addr != b.addr || a.size != b.size || a.thread != b.thread) {
        continue;
      }
      // b overwrote the location after a (same thread, same exact range):
      // commit order must match timestamp order, which the append-only log
      // guarantees; nothing more to check here, but a future runtime change
      // that breaks the invariant will surface as timestamps out of order.
      if (b.timestamp < a.timestamp) {
        std::ostringstream detail;
        detail << "same-thread stores to range @" << std::hex << a.addr
               << " committed out of order";
        out->push_back(Violation{ViolationKind::kCoherence, a.thread, b.instr, detail.str()});
      }
      break;  // only compare adjacent same-range commits
    }
  }
}

}  // namespace ozz::lkmm
