#include "src/baseline/ofence_lite.h"

#include <map>
#include <set>
#include <sstream>

#include "src/fuzz/profile.h"
#include "src/fuzz/syslang.h"
#include "src/oemu/instr.h"

namespace ozz::baseline {
namespace {

struct SubsystemUsage {
  bool store_barrier = false;  // wmb / release / full
  bool load_barrier = false;   // rmb / acquire / full (explicit only)
  // Lock-shaped bitops (P3): per RMW *instruction*, the word it targets and
  // whether any ordering was observed on it. The pattern fires when an
  // ordered (acquiring) RMW and a relaxed RMW hit the same word — the
  // Figure 8 shape (test_and_set_bit paired with plain clear_bit).
  std::map<InstrId, uptr> rmw_addr;
  std::set<InstrId> ordered_rmw;
};

}  // namespace

bool OfenceResult::Flagged(const std::string& subsystem) const {
  for (const OfenceFinding& f : findings) {
    if (f.subsystem == subsystem) {
      return true;
    }
  }
  return false;
}

OfenceResult RunOfenceAnalysis(const osk::KernelConfig& config) {
  // Gather dynamic barrier usage per subsystem from the seed corpus. (The
  // real OFence works on source; profiling the seeds visits the same code.)
  std::map<std::string, SubsystemUsage> usage;
  osk::Kernel template_kernel(config);
  osk::InstallDefaultSubsystems(template_kernel);

  for (const fuzz::Prog& seed : fuzz::SeedPrograms(template_kernel.table())) {
    fuzz::ProgProfile profile = fuzz::ProfileProg(seed, config);
    for (std::size_t c = 0; c < profile.calls.size() && c < seed.calls.size(); ++c) {
      const std::string& subsystem = seed.calls[c].desc->subsystem;
      SubsystemUsage& u = usage[subsystem];
      const oemu::Trace& trace = profile.calls[c].trace;
      // Pass 1: map RMW instructions to the word they operate on.
      for (const oemu::Event& e : trace) {
        if (e.IsAccess() && e.IsStore() &&
            oemu::InstrRegistry::Info(e.instr).kind == oemu::InstrKind::kRmw) {
          u.rmw_addr[e.instr] = e.addr;
        }
      }
      // Pass 2: barrier usage; ordered RMWs are reclassified by their
      // implied barrier events.
      for (const oemu::Event& e : trace) {
        if (!e.IsBarrier()) {
          continue;
        }
        if (e.instr == kInvalidInstr) {
          // Implicit fence (allocator-internal locking): not a barrier the
          // programmer wrote, so not an anchor for pattern matching.
          continue;
        }
        const bool is_rmw = u.rmw_addr.count(e.instr) > 0;
        switch (e.barrier) {
          case oemu::BarrierType::kStoreBarrier:
            u.store_barrier = true;
            break;
          case oemu::BarrierType::kFull:
            u.store_barrier = true;
            u.load_barrier = true;
            break;
          case oemu::BarrierType::kLoadBarrier:
            u.load_barrier = true;
            break;
          case oemu::BarrierType::kRelease:
            if (is_rmw) {
              u.ordered_rmw.insert(e.instr);
            } else {
              u.store_barrier = true;
            }
            break;
          case oemu::BarrierType::kAcquire:
          case oemu::BarrierType::kRmwFull:
            if (is_rmw) {
              u.ordered_rmw.insert(e.instr);
            } else {
              u.load_barrier = true;
            }
            break;
          case oemu::BarrierType::kImpliedLoad:
            break;  // READ_ONCE is an annotation, not a barrier, to OFence
        }
      }
    }
  }

  OfenceResult result;
  for (const auto& [subsystem, u] : usage) {
    if (u.store_barrier && !u.load_barrier) {
      OfenceFinding f;
      f.subsystem = subsystem;
      f.pattern = "P1";
      f.detail = "store barrier without a matching load barrier";
      result.findings.push_back(std::move(f));
    } else if (u.load_barrier && !u.store_barrier) {
      OfenceFinding f;
      f.subsystem = subsystem;
      f.pattern = "P2";
      f.detail = "load barrier without a matching store barrier";
      result.findings.push_back(std::move(f));
    }
    bool p3 = false;
    for (const auto& [relaxed_instr, addr] : u.rmw_addr) {
      if (p3 || u.ordered_rmw.count(relaxed_instr) > 0) {
        continue;  // this RMW is ordered
      }
      for (InstrId ordered_instr : u.ordered_rmw) {
        if (u.rmw_addr.at(ordered_instr) == addr) {
          OfenceFinding f;
          f.subsystem = subsystem;
          f.pattern = "P3";
          f.detail = "acquiring bitop " + oemu::InstrRegistry::Describe(ordered_instr) +
                     " paired with relaxed " + oemu::InstrRegistry::Describe(relaxed_instr) +
                     " on the same word";
          result.findings.push_back(std::move(f));
          p3 = true;
          break;
        }
      }
    }
  }
  return result;
}

}  // namespace ozz::baseline
