// Baseline 3: OFence-lite — static paired-barrier pattern matching (§6.4).
//
// OFence observes that memory barriers come in pairs (a write barrier on the
// publishing side matches a read barrier on the consuming side) and flags
// code where one half is missing. This reproduction applies the same idea to
// the per-subsystem barrier usage observed while profiling the seed programs:
//   P1  store-ordering barrier present, no load-ordering barrier  -> flag
//   P2  load-ordering barrier present, no store-ordering barrier  -> flag
//   P3  acquiring lock-shaped RMW paired with a relaxed clearing RMW
//       on the same word (the Figure 8 custom-lock shape)          -> flag
// Like the original, it needs an existing half-pattern to anchor on: a
// subsystem whose buggy form has *no* barriers at all matches nothing —
// which is why 8 of the 11 Table 3 bugs are out of its reach.
#ifndef OZZ_SRC_BASELINE_OFENCE_LITE_H_
#define OZZ_SRC_BASELINE_OFENCE_LITE_H_

#include <string>
#include <vector>

#include "src/osk/kernel.h"

namespace ozz::baseline {

struct OfenceFinding {
  std::string subsystem;
  std::string pattern;  // "P1", "P2", "P3"
  std::string detail;
};

struct OfenceResult {
  std::vector<OfenceFinding> findings;

  bool Flagged(const std::string& subsystem) const;
};

// Profiles the seed programs under `config` and pattern-matches the observed
// barrier usage per subsystem.
OfenceResult RunOfenceAnalysis(const osk::KernelConfig& config);

}  // namespace ozz::baseline

#endif  // OZZ_SRC_BASELINE_OFENCE_LITE_H_
