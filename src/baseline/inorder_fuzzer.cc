#include "src/baseline/inorder_fuzzer.h"

#include "src/fuzz/profile.h"

namespace ozz::baseline {

fuzz::CampaignResult ExploreInterleavings(const fuzz::Prog& prog,
                                          const osk::KernelConfig& config,
                                          std::size_t max_runs) {
  fuzz::CampaignResult result;
  fuzz::ProgProfile profile = fuzz::ProfileProg(prog, config);
  ++result.sti_runs;
  if (profile.crashed) {
    return result;
  }

  for (std::size_t a = 0; a < profile.calls.size(); ++a) {
    for (std::size_t b = 0; b < profile.calls.size(); ++b) {
      if (a == b) {
        continue;
      }
      // Only accesses to memory shared with the partner are useful switch
      // points (the same filtering OZZ applies, Algorithm 2).
      oemu::Trace shared =
          fuzz::FilterShared(profile.calls[a].trace, profile.calls[b].trace);
      for (const oemu::Event& e : shared) {
        if (!e.IsAccess()) {
          continue;
        }
        for (rt::SwitchWhen phase :
             {rt::SwitchWhen::kBeforeAccess, rt::SwitchWhen::kAfterAccess}) {
          if (result.mti_runs >= max_runs) {
            return result;
          }
          fuzz::MtiSpec spec;
          spec.prog = prog;
          spec.call_a = a;
          spec.call_b = b;
          spec.hint.store_test = true;
          spec.hint.sched = fuzz::DynAccess{e.instr, e.occurrence, e.access};
          spec.hint.sched_phase = phase;
          // no reorder set: in-order execution
          fuzz::MtiOptions opts;
          opts.kernel_config = config;
          opts.reordering = false;
          fuzz::MtiResult mti = fuzz::RunMti(spec, opts);
          ++result.mti_runs;
          if (mti.crashed) {
            bool dup = false;
            for (const fuzz::FoundBug& fb : result.bugs) {
              dup = dup || fb.report.title == mti.crash.title;
            }
            if (!dup) {
              fuzz::FoundBug bug;
              bug.report = fuzz::MakeBugReport(spec, mti);
              bug.found_at_test = result.mti_runs;
              result.bugs.push_back(std::move(bug));
            }
          }
        }
      }
    }
  }
  return result;
}

fuzz::CampaignResult RunInorderCampaign(const fuzz::FuzzerOptions& base_options) {
  fuzz::FuzzerOptions options = base_options;
  options.reordering = false;
  fuzz::Fuzzer fuzzer(options);
  return fuzzer.Run();
}

}  // namespace ozz::baseline
