// Baseline 2: KCSAN-lite — a data-race detector in the spirit of the Kernel
// Concurrency Sanitizer (§7, "Data Race Detector").
//
// KCSAN reports *data races*: concurrent accesses to the same location where
// at least one is a plain (unmarked) write. Accesses annotated with
// READ_ONCE/WRITE_ONCE are considered marked and are NOT reported — which is
// exactly why the incorrect tls fix of §6.1 Case Study 1 silenced KCSAN
// without fixing the OOO bug. This detector reproduces that blind spot.
#ifndef OZZ_SRC_BASELINE_KCSAN_LITE_H_
#define OZZ_SRC_BASELINE_KCSAN_LITE_H_

#include <string>
#include <vector>

#include "src/oemu/event.h"

namespace ozz::baseline {

struct RaceReport {
  InstrId access_a = kInvalidInstr;
  InstrId access_b = kInvalidInstr;
  uptr addr = 0;
  bool write_write = false;
  std::string ToString() const;
};

struct KcsanResult {
  std::vector<RaceReport> reported;
  // Racy pairs that exist but are fully annotated — KCSAN stays silent on
  // these even when a barrier is missing (the Bug #9 blind spot).
  std::size_t suppressed_by_annotation = 0;
};

// Analyzes two syscall traces for data races, KCSAN-style.
KcsanResult FindDataRaces(const oemu::Trace& a, const oemu::Trace& b);

}  // namespace ozz::baseline

#endif  // OZZ_SRC_BASELINE_KCSAN_LITE_H_
