// Baseline 1: a conventional interleaving-only concurrency fuzzer
// (SKI/Snowboard-class, §2.3/§7).
//
// Explores thread interleavings of syscall pairs with the same custom
// scheduler OZZ uses, but performs strictly in-order execution — no OEMU
// reordering. This is what running syzkaller-with-a-scheduler on x86-64 (or
// under QEMU TCG) tests: it finds interleaving-only races but cannot manifest
// OOO bugs, the comparison point of §6.1.
#ifndef OZZ_SRC_BASELINE_INORDER_FUZZER_H_
#define OZZ_SRC_BASELINE_INORDER_FUZZER_H_

#include "src/fuzz/fuzzer.h"

namespace ozz::baseline {

// Exhaustively explores single-switch interleavings of every call pair of
// `prog` (switch before and after each shared access of the first call),
// with no reordering. Returns the campaign result (bugs found, tests run).
fuzz::CampaignResult ExploreInterleavings(const fuzz::Prog& prog,
                                          const osk::KernelConfig& config,
                                          std::size_t max_runs = 2000);

// Full campaign over the seed programs, interleaving-only.
fuzz::CampaignResult RunInorderCampaign(const fuzz::FuzzerOptions& base_options);

}  // namespace ozz::baseline

#endif  // OZZ_SRC_BASELINE_INORDER_FUZZER_H_
