#include "src/baseline/kcsan_lite.h"

#include <set>
#include <sstream>

#include "src/oemu/instr.h"

namespace ozz::baseline {
namespace {

bool RangesOverlap(uptr a, u32 asz, uptr b, u32 bsz) {
  return a < b + bsz && b < a + asz;
}

}  // namespace

std::string RaceReport::ToString() const {
  std::ostringstream os;
  os << "BUG: KCSAN: data-race between " << oemu::InstrRegistry::Describe(access_a) << " and "
     << oemu::InstrRegistry::Describe(access_b);
  return os.str();
}

KcsanResult FindDataRaces(const oemu::Trace& a, const oemu::Trace& b) {
  KcsanResult result;
  std::set<std::pair<InstrId, InstrId>> seen;
  for (const oemu::Event& ea : a) {
    if (!ea.IsAccess()) {
      continue;
    }
    for (const oemu::Event& eb : b) {
      if (!eb.IsAccess()) {
        continue;
      }
      if (!ea.IsStore() && !eb.IsStore()) {
        continue;  // read-read never races
      }
      if (!RangesOverlap(ea.addr, ea.size, eb.addr, eb.size)) {
        continue;
      }
      if (!seen.insert({ea.instr, eb.instr}).second) {
        continue;
      }
      if (ea.annotated && eb.annotated) {
        // Both sides marked: KCSAN treats this as an intentional lockless
        // protocol and stays silent — even if a barrier is missing.
        ++result.suppressed_by_annotation;
        continue;
      }
      RaceReport r;
      r.access_a = ea.instr;
      r.access_b = eb.instr;
      r.addr = ea.addr;
      r.write_write = ea.IsStore() && eb.IsStore();
      result.reported.push_back(r);
    }
  }
  return result;
}

}  // namespace ozz::baseline
