#include "src/fuzz/hints.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/axiomatic.h"
#include "src/obs/prof.h"
#include "src/oemu/instr.h"

namespace ozz::fuzz {
namespace {

bool RangesOverlap(uptr a, u32 asz, uptr b, u32 bsz) {
  return a < b + bsz && b < a + asz;
}

DynAccess ToDyn(const oemu::Event& e) {
  return DynAccess{e.instr, e.occurrence, e.access};
}

analysis::AccessKey ToKey(const DynAccess& d) {
  return analysis::AccessKey{d.instr, d.occurrence, d.type};
}

// A hint is provably a no-op when every reorder member is proven: for the
// store test each delay-store spec either cannot take effect (undelayable)
// or cannot be observed (coherence/lockset); likewise for read-old specs in
// the load test. An MTI run of such a hint degenerates to the plain in-order
// interleaving, which the fuzzer covers anyway.
bool HintProvenNoop(const analysis::PairAnalysis& pa, const SchedHint& h) {
  for (const DynAccess& m : h.reorder) {
    bool proven = h.store_test ? pa.StoreMemberProven(ToKey(m), ToKey(h.sched))
                               : pa.LoadMemberProven(ToKey(h.sched), ToKey(m));
    if (!proven) {
      return false;
    }
  }
  return !h.reorder.empty();
}

// Second-tier prune: bounded model checking of the reorder pairs the static
// proofs left open. A delay-store spec moves the member's commit past every
// access between it and the scheduling point (where the observer runs), and
// a read-old spec moves the member's read up to the window start right
// before the scheduling point — so a member is discharged only when EVERY
// pair it forms across that interval is statically proven (tier 1 on) or
// refuted exactly by the axiomatic engine. A bounded-out verdict never
// discharges. Hints whose members are all discharged are dropped; hints
// containing a witnessed pair are flagged so the sort schedules them first.
// Verdicts are memoized per trace-index pair within one ComputeHints call —
// hints of one group share most of their pairs.
void PruneAxiomatic(const analysis::PairAnalysis& pa, const HintOptions& options,
                    std::vector<SchedHint>* hints, HintStats* stats) {
  analysis::AxOptions ax;
  ax.max_executions = options.axiomatic_budget;
  std::map<std::pair<std::size_t, std::size_t>, analysis::AxVerdict> memo;
  auto check = [&](std::size_t fi, std::size_t si) {
    auto [it, fresh] =
        memo.try_emplace(std::make_pair(fi, si), analysis::AxVerdict::kBoundedOut);
    if (fresh) {
      analysis::AxSlice slice;
      std::string reason;
      if (analysis::BuildSlice(pa, fi, si, ax, &slice, &reason)) {
        it->second = analysis::CheckSlice(slice, ax).verdict;
      }
      if (stats != nullptr) {
        switch (it->second) {
          case analysis::AxVerdict::kWitnessed:
            stats->pairs_witnessed++;
            break;
          case analysis::AxVerdict::kRefutedExact:
            stats->pairs_refuted++;
            break;
          case analysis::AxVerdict::kBoundedOut:
            stats->pairs_bounded++;
            break;
        }
      }
    }
    return it->second;
  };

  const oemu::Trace& trace = pa.reorder_trace();
  std::size_t kept = 0;
  std::size_t before = hints->size();
  for (SchedHint& h : *hints) {
    auto is_member = [&h](const oemu::Event& e) {
      for (const DynAccess& m : h.reorder) {
        if (m.instr == e.instr && m.occurrence == e.occurrence) {
          return true;
        }
      }
      return false;
    };
    bool all_discharged = !h.reorder.empty();
    std::ptrdiff_t sched_idx = pa.EventIndexOf(ToKey(h.sched));
    for (const DynAccess& m : h.reorder) {
      std::ptrdiff_t member_idx = pa.EventIndexOf(ToKey(m));
      bool discharged = member_idx >= 0 && sched_idx >= 0;
      if (discharged) {
        // po interval the member moves across: (member, sched] for the store
        // test (delay), [sched, member) for the load test (read-old).
        std::size_t lo = static_cast<std::size_t>(h.store_test ? member_idx : sched_idx);
        std::size_t hi = static_cast<std::size_t>(h.store_test ? sched_idx : member_idx);
        if (lo >= hi) {
          discharged = false;  // inverted order: never prune
        }
        // Scan the whole interval even once discharge fails: a witnessed
        // pair anywhere must still flag the hint for ranking.
        for (std::size_t k = lo + 1; k <= hi && (discharged || !h.witnessed); ++k) {
          std::size_t fi = h.store_test ? lo : k - 1;
          std::size_t si = h.store_test ? k : hi;
          if (fi == si || !trace[h.store_test ? si : fi].IsAccess()) {
            continue;
          }
          // Fellow reorder members keep their relative order (the store
          // buffer drains in FIFO order; read-old loads share one window),
          // so member-vs-member pairs cannot invert.
          if (is_member(trace[h.store_test ? si : fi])) {
            continue;
          }
          if (options.static_prune) {
            bool proven = h.store_test
                              ? pa.ClassifyStorePair(fi, si) != analysis::OrderEdge::kNone
                              : pa.ClassifyLoadPair(fi, si) != analysis::OrderEdge::kNone;
            if (proven) {
              continue;
            }
          }
          switch (check(fi, si)) {
            case analysis::AxVerdict::kWitnessed:
              h.witnessed = true;
              discharged = false;
              break;
            case analysis::AxVerdict::kRefutedExact:
              break;
            case analysis::AxVerdict::kBoundedOut:
              discharged = false;
              break;
          }
        }
      }
      if (!discharged) {
        all_discharged = false;
      }
    }
    if (!all_discharged || h.witnessed) {
      if (&(*hints)[kept] != &h) {  // guard the self-move when nothing was pruned yet
        (*hints)[kept] = std::move(h);
      }
      kept++;
    }
  }
  hints->resize(kept);
  if (stats != nullptr) {
    stats->hints_pruned_axiomatic += before - kept;
  }
}

}  // namespace

std::string SchedHint::ToString() const {
  std::ostringstream os;
  if (irq_test) {
    os << "irq-injection-test fire@" << oemu::InstrRegistry::Describe(sched.instr) << "#"
       << sched.occurrence;
    return os.str();
  }
  os << (store_test ? "store-barrier-test" : "load-barrier-test") << " sched@"
     << oemu::InstrRegistry::Describe(sched.instr) << "#" << sched.occurrence << " reorder{";
  for (std::size_t i = 0; i < reorder.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << oemu::InstrRegistry::Describe(reorder[i].instr) << "#" << reorder[i].occurrence;
  }
  os << "}";
  if (suffix_shape) {
    os << " [suffix]";
  }
  return os.str();
}

std::vector<SchedHint> ComputeIrqHints(const oemu::Trace& trace, std::size_t max_hints) {
  std::vector<SchedHint> hints;
  for (const oemu::Event& ev : trace) {
    if (!ev.IsAccess()) {
      continue;
    }
    if (hints.size() >= max_hints) {
      break;
    }
    SchedHint hint;
    hint.irq_test = true;
    hint.store_test = ev.access == oemu::AccessType::kStore;
    hint.sched.instr = ev.instr;
    hint.sched.occurrence = ev.occurrence;
    hint.sched.type = ev.access;
    hint.sched_phase = rt::SwitchWhen::kAfterAccess;
    hints.push_back(std::move(hint));
  }
  return hints;
}

// Algorithm 2 (filter_out): keep only accesses to ranges that both syscalls
// touch with at least one store; a memory access that never races cannot
// contribute to an OOO bug.
oemu::Trace FilterShared(const oemu::Trace& trace, const oemu::Trace& other) {
  struct Range {
    uptr addr;
    u32 size;
  };
  std::vector<Range> shared;
  for (const oemu::Event& a : trace) {
    if (!a.IsAccess()) {
      continue;
    }
    for (const oemu::Event& b : other) {
      if (!b.IsAccess()) {
        continue;
      }
      if (!a.IsStore() && !b.IsStore()) {
        continue;  // two loads never race
      }
      if (RangesOverlap(a.addr, a.size, b.addr, b.size)) {
        shared.push_back(Range{a.addr, a.size});
        break;
      }
    }
  }
  oemu::Trace out;
  for (const oemu::Event& e : trace) {
    if (e.IsBarrier()) {
      out.push_back(e);
      continue;
    }
    if (!e.IsAccess()) {
      continue;  // commits are irrelevant to hint construction
    }
    for (const Range& r : shared) {
      if (RangesOverlap(e.addr, e.size, r.addr, r.size)) {
        out.push_back(e);
        break;
      }
    }
  }
  return out;
}

std::vector<SchedHint> ComputeHints(const oemu::Trace& reorder_trace,
                                    const oemu::Trace& other_trace,
                                    const HintOptions& options, HintStats* stats) {
  obs::PhaseTimer phase_timer(obs::Phase::kHintCompute);
  const oemu::MemoryModel& model = oemu::MemoryModel::Resolve(options.model);
  const oemu::Trace filtered = FilterShared(reorder_trace, other_trace);
  std::vector<SchedHint> hints;

  for (int pass = 0; pass < 2; ++pass) {
    const bool store_test = pass == 0;
    if ((store_test && !options.store_tests) || (!store_test && !options.load_tests)) {
      continue;
    }
    // A model that never emulates the tested reordering class makes every
    // hint of this pass a guaranteed no-op — the specs are inert under it.
    if (store_test ? !model.StoresDelayable() : !model.LoadsVersionable()) {
      continue;
    }
    // Step 2: group accesses between barriers of the tested type.
    std::vector<std::vector<oemu::Event>> groups;
    std::vector<oemu::Event> group;
    for (const oemu::Event& e : filtered) {
      if (e.IsAccess()) {
        group.push_back(e);
        continue;
      }
      oemu::BarrierClass cls = model.EffectOf(e.barrier);
      const bool splits = store_test ? cls.orders_stores : cls.orders_loads;
      if (splits && !group.empty()) {
        groups.push_back(std::move(group));
        group.clear();
      }
    }
    if (!group.empty()) {
      groups.push_back(std::move(group));
    }

    // Step 3: hints per group.
    for (const std::vector<oemu::Event>& g : groups) {
      if (g.size() < 2) {
        continue;
      }
      if (store_test) {
        // The reorderable accesses are the group's stores; the scheduling
        // point is the group's last access (switch after it — right before
        // the actual barrier, Fig. 5a).
        std::vector<oemu::Event> stores;
        for (const oemu::Event& e : g) {
          if (e.IsStore()) {
            stores.push_back(e);
          }
        }
        if (stores.empty()) {
          continue;
        }
        // Exclude the final store from reorder sets when it is also the
        // scheduling point (it must commit so the observer sees the
        // "overtaking" access).
        std::size_t n = stores.size();
        bool last_is_sched = stores.back().instr == g.back().instr &&
                             stores.back().occurrence == g.back().occurrence;
        std::size_t delayable = last_is_sched ? n - 1 : n;
        if (delayable == 0) {
          continue;
        }
        SchedHint base;
        base.store_test = true;
        base.sched = ToDyn(g.back());
        base.sched_phase = rt::SwitchWhen::kAfterAccess;
        // Prefixes (the paper's moving hypothetical barrier).
        for (std::size_t k = delayable; k >= 1; --k) {
          SchedHint h = base;
          for (std::size_t i = 0; i < k; ++i) {
            h.reorder.push_back(ToDyn(stores[i]));
          }
          hints.push_back(std::move(h));
        }
        // Suffixes (extension: non-FIFO store buffer drained a prefix).
        if (options.suffix_store_hints) {
          for (std::size_t k = 1; k < delayable; ++k) {
            SchedHint h = base;
            h.suffix_shape = true;
            for (std::size_t i = k; i < delayable; ++i) {
              h.reorder.push_back(ToDyn(stores[i]));
            }
            hints.push_back(std::move(h));
          }
        }
      } else {
        // Load test: scheduling point is the group's first access (switch
        // before it — right after the actual barrier, Fig. 5b); reorder sets
        // are suffixes of the group's loads.
        std::vector<oemu::Event> loads;
        for (const oemu::Event& e : g) {
          if (e.IsLoad()) {
            loads.push_back(e);
          }
        }
        if (loads.size() < 2) {
          continue;
        }
        SchedHint base;
        base.store_test = false;
        base.sched = ToDyn(g.front());
        base.sched_phase = rt::SwitchWhen::kBeforeAccess;
        for (std::size_t k = 1; k < loads.size(); ++k) {
          SchedHint h = base;
          for (std::size_t i = k; i < loads.size(); ++i) {
            h.reorder.push_back(ToDyn(loads[i]));
          }
          hints.push_back(std::move(h));
        }
      }
    }
  }

  // Prune tiers (and their accounting). The analysis runs on the raw traces:
  // lock events and commit adjacency are stripped by FilterShared.
  if (options.static_prune || options.axiomatic_prune || stats != nullptr) {
    analysis::PairAnalysis pa(reorder_trace, other_trace, &model);
    if (stats != nullptr) {
      stats->hints_generated += hints.size();
      stats->pairs.Add(pa.ComputeStats());
    }
    if (options.static_prune) {
      obs::PhaseTimer prune_timer(obs::Phase::kStaticPrune);
      std::size_t before = hints.size();
      std::erase_if(hints, [&pa](const SchedHint& h) { return HintProvenNoop(pa, h); });
      if (stats != nullptr) {
        stats->hints_pruned_static += before - hints.size();
      }
    }
    if (options.axiomatic_prune) {
      obs::PhaseTimer axiomatic_timer(obs::Phase::kAxiomatic);
      PruneAxiomatic(pa, options, &hints, stats);
    }
  }

  // The search heuristic: witnessed hints first (the axiomatic engine proved
  // the inversion observable), then the hints that deviate most from
  // sequential order (largest reorder set first); stable within equal keys.
  std::stable_sort(hints.begin(), hints.end(), [](const SchedHint& a, const SchedHint& b) {
    if (a.witnessed != b.witnessed) {
      return a.witnessed;
    }
    return a.reorder.size() > b.reorder.size();
  });
  if (hints.size() > options.max_hints) {
    hints.resize(options.max_hints);
  }
  return hints;
}

}  // namespace ozz::fuzz
