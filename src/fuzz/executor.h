// Multi-threaded input (MTI) execution (§4.4).
//
// An MTI is an STI plus an annotation: which two calls run concurrently and
// under which scheduling hint. RunMti executes it on a fresh simulated
// machine: the non-paired calls run first (sequentially, preserving resource
// dependencies), then the reordering call starts on CPU 0 with the hint's
// delay/read-old controls installed while the custom scheduler holds the
// observer; at the hint's scheduling point the scheduler switches to the
// observer call on CPU 1 (Fig. 5), and the kernel's oracles watch for
// malfunction.
#ifndef OZZ_SRC_FUZZ_EXECUTOR_H_
#define OZZ_SRC_FUZZ_EXECUTOR_H_

#include "src/fuzz/hints.h"
#include "src/fuzz/syslang.h"
#include "src/oemu/runtime.h"
#include "src/osk/kernel.h"

namespace ozz::fuzz {

struct MtiSpec {
  Prog prog;
  std::size_t call_a = 0;  // the reordering call (thread 0, runs first)
  std::size_t call_b = 0;  // the observer call (thread 1)
  SchedHint hint;
};

struct MtiResult {
  bool crashed = false;
  osk::OopsReport crash;
  long ret_a = 0;
  long ret_b = 0;
  bool switch_fired = false;  // the scheduling point was reached
  oemu::Runtime::Stats stats;
  // Hint-lifecycle accounting (mirrors the trace triage, available even
  // without a trace): controls installed, and accesses that matched one.
  u64 hint_armed = 0;
  u64 hint_hits = 0;
  // Return values of every call: prefix calls (index < max(a,b), run before
  // the pair), the pair itself, and epilogue calls (index > max(a,b), run
  // after the pair — handy as postcondition oracles).
  std::vector<long> results;
};

struct MtiOptions {
  osk::KernelConfig kernel_config;
  // false: ignore the hint's reorder set (in-order execution — what a
  // conventional concurrency fuzzer tests; the §6.1 "x86-64/TCG" point).
  bool reordering = true;
  // Memory-model backend for the execution's runtime (also stamped into the
  // trace meta). Must match the model the hint was computed under; nullptr
  // resolves to lkmm.
  const oemu::MemoryModel* model = nullptr;
  // Non-empty: record a reorder trace of this execution and serialize it to
  // the given .ozztrace path (inspect with ozz_trace).
  std::string trace_path;
  std::string trace_label;
};

MtiResult RunMti(const MtiSpec& spec, const MtiOptions& options = {});

}  // namespace ozz::fuzz

#endif  // OZZ_SRC_FUZZ_EXECUTOR_H_
