#include "src/fuzz/profile.h"

#include "src/obs/prof.h"
#include "src/oemu/runtime.h"

namespace ozz::fuzz {

std::vector<i64> ResolveArgs(const Call& call, const std::vector<long>& results) {
  std::vector<i64> args;
  args.reserve(call.args.size());
  for (const ArgValue& a : call.args) {
    if (a.ref_call >= 0 && static_cast<std::size_t>(a.ref_call) < results.size()) {
      args.push_back(results[static_cast<std::size_t>(a.ref_call)]);
    } else if (a.ref_call >= 0) {
      args.push_back(-1);  // unresolved producer: invalid handle
    } else {
      args.push_back(a.value);
    }
  }
  return args;
}

ProgProfile ProfileProg(const Prog& prog, const osk::KernelConfig& config,
                        const oemu::MemoryModel* model) {
  obs::PhaseTimer phase_timer(obs::Phase::kProfile);
  ProgProfile profile;
  oemu::Runtime::Options rt_opts;
  rt_opts.model = model;
  oemu::Runtime runtime(rt_opts);  // in-order by default spec (no controls installed)
  runtime.Activate(nullptr);
  osk::Kernel kernel(config);
  kernel.Attach(nullptr, &runtime);
  osk::InstallDefaultSubsystems(kernel);

  ThreadId tid = oemu::Runtime::CurrentThreadId();
  std::vector<long> results;
  for (const Call& call : prog.calls) {
    CallProfile cp;
    runtime.StartRecording(tid);
    // Resolve by name: descriptor pointers bind the subsystem instances of
    // the kernel they were created in, and this is a fresh kernel.
    cp.retval = kernel.InvokeByName(call.desc->name, ResolveArgs(call, results));
    cp.trace = runtime.StopRecording(tid);
    cp.irq_armed = kernel.IrqHandlerCount() > 0;
    for (const oemu::Event& e : cp.trace) {
      if (e.IsAccess()) {
        profile.coverage.insert(e.instr);
      }
    }
    results.push_back(cp.retval);
    profile.calls.push_back(std::move(cp));
    if (kernel.crashed()) {
      profile.crashed = true;
      profile.crash = *kernel.crash();
      break;
    }
  }
  runtime.Deactivate();
  return profile;
}

}  // namespace ozz::fuzz
