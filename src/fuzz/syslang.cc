#include "src/fuzz/syslang.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/base/check.h"

namespace ozz::fuzz {

std::string Prog::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < calls.size(); ++i) {
    if (i > 0) {
      os << "; ";
    }
    os << "r" << i << " = " << calls[i].desc->name << "(";
    for (std::size_t a = 0; a < calls[i].args.size(); ++a) {
      if (a > 0) {
        os << ", ";
      }
      if (calls[i].args[a].ref_call >= 0) {
        os << "r" << calls[i].args[a].ref_call;
      } else {
        os << calls[i].args[a].value;
      }
    }
    os << ")";
  }
  return os.str();
}

ProgGenerator::ProgGenerator(const osk::SyscallTable& table, base::Rng* rng)
    : table_(table), rng_(rng) {
  std::set<std::string> seen;
  for (const osk::SyscallDesc& d : table.all()) {
    if (seen.insert(d.subsystem).second) {
      subsystems_.push_back(d.subsystem);
    }
  }
  OZZ_CHECK_MSG(!subsystems_.empty(), "syscall table is empty");
}

const osk::SyscallDesc* ProgGenerator::ProducerFor(const std::string& resource) const {
  for (const osk::SyscallDesc& d : table_.all()) {
    if (d.produces == resource) {
      return &d;
    }
  }
  return nullptr;
}

int ProgGenerator::FindProducedBefore(const Prog& prog, const std::string& resource,
                                      std::size_t limit) const {
  std::vector<int> candidates;
  for (std::size_t i = 0; i < std::min(limit, prog.calls.size()); ++i) {
    if (prog.calls[i].desc->produces == resource) {
      candidates.push_back(static_cast<int>(i));
    }
  }
  if (candidates.empty()) {
    return -1;
  }
  return rng_->Pick(candidates);
}

void ProgGenerator::FillArgs(Prog* prog, Call* call) {
  call->args.clear();
  for (const osk::ArgDesc& a : call->desc->args) {
    ArgValue v;
    switch (a.kind) {
      case osk::ArgDesc::Kind::kIntRange:
        v.value = static_cast<i64>(rng_->InRange(static_cast<u64>(a.min), static_cast<u64>(a.max)));
        break;
      case osk::ArgDesc::Kind::kFlags:
        v.value = a.choices[rng_->Below(a.choices.size())];
        break;
      case osk::ArgDesc::Kind::kResource: {
        int producer = FindProducedBefore(*prog, a.resource, prog->calls.size());
        v.ref_call = producer;  // -1 resolves to an invalid handle at runtime
        break;
      }
    }
    call->args.push_back(v);
  }
}

bool ProgGenerator::Append(Prog* prog, const osk::SyscallDesc* desc, int depth) {
  if (depth > 4) {
    return false;
  }
  // Ensure producers exist for every resource argument first.
  for (const osk::ArgDesc& a : desc->args) {
    if (a.kind != osk::ArgDesc::Kind::kResource) {
      continue;
    }
    if (FindProducedBefore(*prog, a.resource, prog->calls.size()) >= 0) {
      continue;
    }
    const osk::SyscallDesc* producer = ProducerFor(a.resource);
    if (producer == nullptr || !Append(prog, producer, depth + 1)) {
      return false;
    }
  }
  Call call;
  call.desc = desc;
  FillArgs(prog, &call);
  prog->calls.push_back(std::move(call));
  return true;
}

Prog ProgGenerator::Generate(std::size_t max_calls) {
  Prog prog;
  // Bias: 80% single-subsystem programs, 20% mixed.
  const bool single = !rng_->OneIn(5);
  const std::string& subsystem = rng_->Pick(subsystems_);
  std::size_t target = 2 + rng_->Below(max_calls > 2 ? max_calls - 2 : 1);
  for (int attempts = 0; prog.calls.size() < target && attempts < 32; ++attempts) {
    std::vector<const osk::SyscallDesc*> pool;
    for (const osk::SyscallDesc& d : table_.all()) {
      if (!single || d.subsystem == subsystem) {
        pool.push_back(&d);
      }
    }
    if (pool.empty()) {
      break;
    }
    Append(&prog, rng_->Pick(pool), 0);
  }
  if (prog.calls.size() > max_calls) {
    prog.calls.resize(max_calls);
  }
  return prog;
}

Prog ProgGenerator::Mutate(const Prog& original, std::size_t max_calls) {
  Prog prog = original;
  switch (rng_->Below(3)) {
    case 0: {  // append a call from the same dominant subsystem
      if (prog.calls.empty()) {
        return Generate(max_calls);
      }
      const std::string& subsystem = rng_->Pick(prog.calls).desc->subsystem;
      std::vector<const osk::SyscallDesc*> pool;
      for (const osk::SyscallDesc& d : table_.all()) {
        if (d.subsystem == subsystem) {
          pool.push_back(&d);
        }
      }
      if (!pool.empty() && prog.calls.size() < max_calls) {
        Append(&prog, rng_->Pick(pool), 0);
      }
      break;
    }
    case 1: {  // re-roll one call's literal arguments (keep resource wiring)
      if (!prog.calls.empty()) {
        Call& c = rng_->Pick(prog.calls);
        for (std::size_t a = 0; a < c.args.size(); ++a) {
          const osk::ArgDesc& d = c.desc->args[a];
          if (c.args[a].ref_call >= 0) {
            continue;
          }
          if (d.kind == osk::ArgDesc::Kind::kIntRange) {
            c.args[a].value =
                static_cast<i64>(rng_->InRange(static_cast<u64>(d.min), static_cast<u64>(d.max)));
          } else if (d.kind == osk::ArgDesc::Kind::kFlags) {
            c.args[a].value = d.choices[rng_->Below(d.choices.size())];
          }
        }
      }
      break;
    }
    case 2: {  // drop the last non-producer call
      if (prog.calls.size() > 1) {
        prog.calls.pop_back();
      }
      break;
    }
  }
  return prog;
}

namespace {

// Builds a prog from syscall names; resource args auto-wire to the most
// recent producer. Skips unknown names (keeps seeds robust to config).
Prog MakeSeed(const osk::SyscallTable& table, std::initializer_list<const char*> names) {
  Prog prog;
  for (const char* name : names) {
    const osk::SyscallDesc* desc = table.Find(name);
    if (desc == nullptr) {
      continue;
    }
    Call call;
    call.desc = desc;
    for (const osk::ArgDesc& a : desc->args) {
      ArgValue v;
      switch (a.kind) {
        case osk::ArgDesc::Kind::kIntRange:
          v.value = a.min;  // smallest valid value: indices line up with producers
          break;
        case osk::ArgDesc::Kind::kFlags:
          v.value = a.choices.back();
          break;
        case osk::ArgDesc::Kind::kResource: {
          v.ref_call = -1;
          for (int i = static_cast<int>(prog.calls.size()) - 1; i >= 0; --i) {
            if (prog.calls[static_cast<std::size_t>(i)].desc->produces == a.resource) {
              v.ref_call = i;
              break;
            }
          }
          break;
        }
      }
      call.args.push_back(v);
    }
    prog.calls.push_back(std::move(call));
  }
  return prog;
}

}  // namespace

Prog SeedProgramFor(const osk::SyscallTable& table, const std::string& subsystem) {
  if (subsystem == "watch_queue") {
    return MakeSeed(table, {"wq$post", "wq$read"});
  }
  if (subsystem == "tls") {
    return MakeSeed(table, {"tls$open", "tls$init", "tls$setsockopt"});
  }
  if (subsystem == "tls_getsockopt") {
    return MakeSeed(table, {"tls$open", "tls$init", "tls$getsockopt"});
  }
  if (subsystem == "tls_err_abort") {
    return MakeSeed(table, {"tls$open", "tls$err_abort", "tls$poll", "tls$anomalies"});
  }
  if (subsystem == "buffer") {
    return MakeSeed(table, {"bh$write", "bh$write", "bh$try_free"});
  }
  if (subsystem == "rdma") {
    return MakeSeed(table, {"rdma$hw_complete", "rdma$poll_cq"});
  }
  if (subsystem == "rds") {
    return MakeSeed(table, {"rds$sendmsg", "rds$loop_xmit"});
  }
  if (subsystem == "xsk") {
    return MakeSeed(table, {"xsk$socket", "xsk$bind", "xsk$poll"});
  }
  if (subsystem == "xsk_xmit") {
    return MakeSeed(table, {"xsk$socket", "xsk$bind", "xsk$sendmsg"});
  }
  if (subsystem == "bpf_sockmap") {
    return MakeSeed(table, {"bpf$sockmap_attach", "bpf$sockmap_recv"});
  }
  if (subsystem == "smc") {
    return MakeSeed(table, {"smc$listen", "smc$connect"});
  }
  if (subsystem == "smc_close") {
    return MakeSeed(table, {"smc$listen", "smc$close"});
  }
  if (subsystem == "vmci") {
    return MakeSeed(table, {"vmci$qp_attach", "vmci$qp_poll"});
  }
  if (subsystem == "gsm") {
    return MakeSeed(table, {"gsm$dlci_open", "gsm$dlci_config"});
  }
  if (subsystem == "vlan") {
    return MakeSeed(table, {"vlan$add", "vlan$get"});
  }
  if (subsystem == "unix") {
    return MakeSeed(table, {"unix$bind", "unix$getname"});
  }
  if (subsystem == "nbd") {
    return MakeSeed(table, {"nbd$setup", "nbd$ioctl"});
  }
  if (subsystem == "mq") {
    return MakeSeed(table, {"mq$submit", "mq$complete", "mq$reap"});
  }
  if (subsystem == "fs") {
    return MakeSeed(table, {"fs$open", "fs$read"});
  }
  if (subsystem == "ringbuf") {
    return MakeSeed(table, {"ringbuf$write", "ringbuf$read"});
  }
  if (subsystem == "seqlock") {
    return MakeSeed(table, {"seqlock$update", "seqlock$read"});
  }
  if (subsystem == "rcu") {
    return MakeSeed(table, {"rcu$update", "rcu$read"});
  }
  if (subsystem == "synthetic") {
    return MakeSeed(table, {"syn$t1", "syn$t2"});
  }
  if (subsystem == "timerwheel") {
    return MakeSeed(table, {"timer$arm", "timer$mod"});
  }
  return Prog{};
}

std::vector<Prog> SeedPrograms(const osk::SyscallTable& table) {
  std::vector<Prog> seeds;
  for (const char* name :
       {"watch_queue", "tls", "tls_getsockopt", "tls_err_abort", "rds", "xsk", "xsk_xmit",
        "bpf_sockmap", "smc", "smc_close", "vmci", "gsm", "vlan", "unix", "nbd", "mq", "fs", "rdma", "buffer",
        "ringbuf", "seqlock", "rcu", "synthetic", "timerwheel"}) {
    Prog p = SeedProgramFor(table, name);
    if (!p.calls.empty()) {
      seeds.push_back(std::move(p));
    }
  }
  return seeds;
}

}  // namespace ozz::fuzz
