#include "src/fuzz/corpus.h"

#include <algorithm>

#include "src/base/check.h"

namespace ozz::fuzz {

bool Corpus::Add(Prog prog, const std::set<InstrId>& coverage, std::size_t guide_score) {
  bool fresh = false;
  for (InstrId id : coverage) {
    if (covered_.insert(id).second) {
      fresh = true;
    }
  }
  if (fresh) {
    progs_.push_back(std::move(prog));
    guide_scores_.push_back(guide_score);
  }
  return fresh;
}

const Prog& Corpus::Pick(base::Rng& rng) const {
  OZZ_CHECK(!progs_.empty());
  const std::size_t best = *std::max_element(guide_scores_.begin(), guide_scores_.end());
  if (best > 0 && rng.OneIn(2)) {
    // Guided pick: uniform among the top-scored programs.
    std::vector<std::size_t> top;
    for (std::size_t i = 0; i < progs_.size(); ++i) {
      if (guide_scores_[i] == best) {
        top.push_back(i);
      }
    }
    return progs_[top[static_cast<std::size_t>(rng.Below(top.size()))]];
  }
  return progs_[static_cast<std::size_t>(rng.Below(progs_.size()))];
}

}  // namespace ozz::fuzz
