#include "src/fuzz/corpus.h"

#include "src/base/check.h"

namespace ozz::fuzz {

bool Corpus::Add(Prog prog, const std::set<InstrId>& coverage) {
  bool fresh = false;
  for (InstrId id : coverage) {
    if (covered_.insert(id).second) {
      fresh = true;
    }
  }
  if (fresh) {
    progs_.push_back(std::move(prog));
  }
  return fresh;
}

const Prog& Corpus::Pick(base::Rng& rng) const {
  OZZ_CHECK(!progs_.empty());
  return progs_[static_cast<std::size_t>(rng.Below(progs_.size()))];
}

}  // namespace ozz::fuzz
