// The OZZ fuzzer (§4): the campaign driver tying the whole workflow of
// Figure 6 together — generate/mutate STIs, profile them, compute scheduling
// hints, translate to MTIs, execute under the custom scheduler + OEMU, and
// collect deduplicated bug reports annotated with the hypothetical barrier.
#ifndef OZZ_SRC_FUZZ_FUZZER_H_
#define OZZ_SRC_FUZZ_FUZZER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/fuzz/corpus.h"
#include "src/fuzz/executor.h"
#include "src/fuzz/hints.h"
#include "src/fuzz/report.h"
#include "src/fuzz/syslang.h"
#include "src/osk/kernel.h"

namespace ozz::fuzz {

struct FuzzerOptions {
  u64 seed = 1;
  std::size_t max_mti_runs = 5000;  // test budget (MTI executions)
  // Safety budget on single-threaded (profiling) runs: programs whose pairs
  // yield no hints consume no MTI budget, so campaigns also stop after this
  // many STIs. 0 means "same as max_mti_runs".
  std::size_t max_sti_runs = 0;
  std::size_t max_calls = 5;
  std::size_t max_pairs_per_prog = 8;
  HintOptions hints;
  osk::KernelConfig kernel_config;
  // false: run the same MTIs without OEMU reordering — the conventional
  // interleaving-only concurrency fuzzer (the x86-64 / TCG comparison).
  bool reordering = true;
  bool use_seed_programs = true;
  std::size_t stop_after_bugs = static_cast<std::size_t>(-1);
  // Hint ordering, for the §4.3 search-heuristic ablation.
  enum class HintOrder { kHeuristic, kReverse, kRandom };
  HintOrder hint_order = HintOrder::kHeuristic;
};

struct FoundBug {
  BugReport report;
  MtiSpec spec;  // the exact (program, pair, hint) that triggered it — replayable
  u64 found_at_test = 0;    // MTI executions when first triggered
  std::size_t hint_rank = 0;  // rank of the triggering hint within its pair
  bool by_largest_hint = false;  // rank 0 == the maximal-reorder hint
};

struct CampaignResult {
  std::vector<FoundBug> bugs;  // deduplicated by crash title
  u64 mti_runs = 0;
  u64 sti_runs = 0;
  std::size_t corpus_size = 0;
  std::size_t coverage = 0;
  // Static pre-filter accounting across every hint calculation of the
  // campaign (pair stats are collected even when pruning is disabled).
  HintStats hint_stats;

  const FoundBug* FindByTitle(const std::string& needle) const;
};

// Machine-readable campaign summary (JSON) for dashboards/CI.
std::string CampaignToJson(const CampaignResult& result);

class Fuzzer {
 public:
  explicit Fuzzer(FuzzerOptions options);
  ~Fuzzer();

  // Full fuzzing campaign: generate + mutate programs until the budget is
  // exhausted or `stop_after_bugs` unique bugs were found.
  CampaignResult Run();

  // §6.2 mode: test one given single-threaded input (a known reproducer)
  // until it crashes or the budget runs out.
  CampaignResult RunProg(const Prog& prog);

  // The syscall table used for generation (backed by a template kernel that
  // is never executed).
  const osk::SyscallTable& table() const;

 private:
  std::size_t StiBudget() const;
  bool Exhausted(const CampaignResult& result) const;
  // Profiles `prog` and runs the hypothetical-barrier tests for every
  // adjacent pair; returns true if the bug budget is exhausted.
  bool TestProg(const Prog& prog, CampaignResult* result);
  void RecordBug(const MtiSpec& spec, const MtiResult& mti, std::size_t hint_rank,
                 CampaignResult* result);

  FuzzerOptions options_;
  base::Rng rng_;
  std::unique_ptr<osk::Kernel> template_kernel_;
  std::unique_ptr<ProgGenerator> generator_;
  Corpus corpus_;
};

}  // namespace ozz::fuzz

#endif  // OZZ_SRC_FUZZ_FUZZER_H_
