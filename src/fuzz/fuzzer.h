// The OZZ fuzzer (§4): the campaign driver tying the whole workflow of
// Figure 6 together — generate/mutate STIs, profile them, compute scheduling
// hints, translate to MTIs, execute under the custom scheduler + OEMU, and
// collect deduplicated bug reports annotated with the hypothetical barrier.
#ifndef OZZ_SRC_FUZZ_FUZZER_H_
#define OZZ_SRC_FUZZ_FUZZER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include <set>
#include <utility>

#include "src/fuzz/corpus.h"
#include "src/fuzz/executor.h"
#include "src/fuzz/hints.h"
#include "src/fuzz/profile.h"
#include "src/fuzz/report.h"
#include "src/fuzz/syslang.h"
#include "src/obs/metrics.h"
#include "src/osk/kernel.h"

namespace ozz::fuzz {

// A statically-suspicious access site (from the src/analysis/srcmodel
// audit), identified the same way InstrRegistry identifies dynamic sites:
// normalized source path + line. See src/fuzz/static_guide.h.
struct GuideSite {
  std::string file;
  u32 line = 0;
};

struct FuzzerOptions {
  u64 seed = 1;
  std::size_t max_mti_runs = 5000;  // test budget (MTI executions)
  // Safety budget on single-threaded (profiling) runs: programs whose pairs
  // yield no hints consume no MTI budget, so campaigns also stop after this
  // many STIs. 0 means "same as max_mti_runs".
  std::size_t max_sti_runs = 0;
  std::size_t max_calls = 5;
  std::size_t max_pairs_per_prog = 8;
  HintOptions hints;
  osk::KernelConfig kernel_config;
  // Memory-model backend for the whole campaign: profiling, hint
  // calculation, and MTI execution all use it (the constructor copies it
  // into hints.model — one source of truth). nullptr resolves to lkmm.
  const oemu::MemoryModel* model = nullptr;
  // false: run the same MTIs without OEMU reordering — the conventional
  // interleaving-only concurrency fuzzer (the x86-64 / TCG comparison).
  bool reordering = true;
  bool use_seed_programs = true;
  std::size_t stop_after_bugs = static_cast<std::size_t>(-1);
  // Hint ordering, for the §4.3 search-heuristic ablation.
  enum class HintOrder { kHeuristic, kReverse, kRandom };
  HintOrder hint_order = HintOrder::kHeuristic;
  // Static guidance (`ozz_fuzz --static-guide`): call pairs whose traces
  // touch guide sites not yet covered by any hint are tested first, and
  // corpus picks are biased toward programs covering untested guide sites.
  // Purely a priority boost — no hint or pair is ever skipped because of it.
  std::vector<GuideSite> static_guide;
  // Interrupt-injection pass (`--sti-guide` prioritizes it; the pass itself
  // runs whenever reordering is on and a profiled call has a hardirq handler
  // armed): per such call, at most this many injection points are tested
  // (one MTI each, enumerated over the call's own trace).
  std::size_t max_irq_points_per_call = 64;
  // Statically irq-racy sites (from the race analyzer's same-CPU tier):
  // injection points matching one are tested first. Pure prioritization —
  // the enumeration set is never pruned (tests/static_prune_test.cc).
  std::vector<GuideSite> sti_guide;
  // Non-empty: every MTI execution writes a reorder trace into this directory
  // as mti_NNNNNN.ozztrace (triage the set with ozz_trace).
  std::string trace_dir;
  // Cooperative cancellation (`ozz_fuzz` SIGINT): when the pointee becomes
  // true the campaign stops at the next budget check and finalizes normally,
  // so every output (metrics, traces, stats) is still flushed.
  const std::atomic<bool>* stop_flag = nullptr;
};

struct FoundBug {
  BugReport report;
  MtiSpec spec;  // the exact (program, pair, hint) that triggered it — replayable
  u64 found_at_test = 0;    // MTI executions when first triggered
  std::size_t hint_rank = 0;  // rank of the triggering hint within its pair
  bool by_largest_hint = false;  // rank 0 == the maximal-reorder hint
};

struct CampaignResult {
  std::vector<FoundBug> bugs;  // deduplicated by crash title
  std::string model;           // memory-model backend the campaign ran under
  u64 mti_runs = 0;
  u64 sti_runs = 0;
  std::size_t corpus_size = 0;
  std::size_t coverage = 0;
  // Static pre-filter accounting across every hint calculation of the
  // campaign (pair stats are collected even when pruning is disabled).
  HintStats hint_stats;
  // Static-guide accounting: sites supplied, and sites some hint's
  // sched/reorder set covered during the campaign.
  std::size_t guide_sites = 0;
  std::size_t guide_sites_tested = 0;
  // Sti-guide accounting: irq-racy sites supplied, and sites some injected
  // interrupt point actually landed on.
  std::size_t sti_guide_sites = 0;
  std::size_t sti_guide_sites_tested = 0;
  // This campaign's contribution to the obs metrics registry (counter and
  // histogram deltas as JSON); embedded under "metrics" by CampaignToJson.
  std::string metrics_json;
  // True when the campaign stopped because FuzzerOptions::stop_flag fired
  // rather than by exhausting a budget.
  bool interrupted = false;

  const FoundBug* FindByTitle(const std::string& needle) const;
};

// Machine-readable campaign summary (JSON) for dashboards/CI.
std::string CampaignToJson(const CampaignResult& result);

// The (file, line) key a GuideSite or a registered InstrId joins on.
using GuideKey = std::pair<std::string, u32>;

// Orders the ordered call pairs (a, b), a != b, of a profiled program so
// pairs whose two traces touch more not-yet-tested guide sites come first
// (stable: equal scores keep the natural (a, b) order, which is also the
// full order when no guide is configured). Exposed for tests — this is the
// "measurably reorders STI scheduling" contract of --static-guide. Every
// pair is always present exactly once: guidance reorders, never drops.
std::vector<std::pair<std::size_t, std::size_t>> GuidedPairOrder(
    const ProgProfile& profile, const std::set<GuideKey>& guide_sites,
    const std::set<GuideKey>& already_tested);

class Fuzzer {
 public:
  explicit Fuzzer(FuzzerOptions options);
  ~Fuzzer();

  // Full fuzzing campaign: generate + mutate programs until the budget is
  // exhausted or `stop_after_bugs` unique bugs were found.
  CampaignResult Run();

  // §6.2 mode: test one given single-threaded input (a known reproducer)
  // until it crashes or the budget runs out.
  CampaignResult RunProg(const Prog& prog);

  // The syscall table used for generation (backed by a template kernel that
  // is never executed).
  const osk::SyscallTable& table() const;

 private:
  std::size_t StiBudget() const;
  bool Exhausted(const CampaignResult& result) const;
  // Profiles `prog` and runs the hypothetical-barrier tests for every
  // adjacent pair; returns true if the bug budget is exhausted.
  bool TestProg(const Prog& prog, CampaignResult* result);
  void RecordBug(const MtiSpec& spec, const MtiResult& mti, std::size_t hint_rank,
                 CampaignResult* result);

  // Fills the end-of-campaign fields: corpus/coverage/guide accounting and
  // the metrics delta since `begin` (this campaign's contribution).
  void Finalize(const obs::MetricsSnapshot& begin, CampaignResult* result) const;

  // Runs the interrupt-injection pass over `profile`'s armed calls.
  // Returns true when the budget is exhausted.
  bool TestIrqPoints(const Prog& prog, const ProgProfile& profile, CampaignResult* result);

  // Distinct untested guide sites covered by `coverage` (corpus-pick bias).
  std::size_t GuideScore(const std::set<InstrId>& coverage) const;
  // Marks guide sites covered by this hint's sched/reorder sets as tested.
  void MarkHintTested(const SchedHint& hint);

  FuzzerOptions options_;
  base::Rng rng_;
  std::unique_ptr<osk::Kernel> template_kernel_;
  std::unique_ptr<ProgGenerator> generator_;
  Corpus corpus_;
  std::set<GuideKey> guide_sites_;
  std::set<GuideKey> guide_tested_;
  std::set<GuideKey> sti_guide_sites_;
  std::set<GuideKey> sti_guide_tested_;
};

}  // namespace ozz::fuzz

#endif  // OZZ_SRC_FUZZ_FUZZER_H_
