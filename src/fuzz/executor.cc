#include "src/fuzz/executor.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/fuzz/profile.h"
#include "src/rt/machine.h"

namespace ozz::fuzz {

MtiResult RunMti(const MtiSpec& spec, const MtiOptions& options) {
  MtiResult result;
  OZZ_CHECK(spec.call_a < spec.prog.calls.size());
  OZZ_CHECK(spec.call_b < spec.prog.calls.size());
  OZZ_CHECK(spec.call_a != spec.call_b);

  oemu::Runtime::Options rt_opts;
  rt_opts.reordering_enabled = options.reordering;
  oemu::Runtime runtime(rt_opts);
  rt::Machine machine(2);
  runtime.Activate(&machine);
  osk::Kernel kernel(options.kernel_config);
  kernel.Attach(&machine, &runtime);
  osk::InstallDefaultSubsystems(kernel);

  // The plan targets occurrences counted from the start of call_a; keep it
  // disarmed through the sequential prefix.
  machine.SetPlanArmed(false);
  rt::SchedPlan plan;
  plan.first = 0;
  rt::SchedPoint point;
  point.thread = 0;
  point.instr = spec.hint.sched.instr;
  point.occurrence = spec.hint.sched.occurrence;
  point.when = spec.hint.sched_phase;
  point.next = 1;
  plan.points.push_back(point);
  machine.SetPlan(plan);

  std::vector<long> results(spec.prog.calls.size(), -1);

  const std::size_t pair_end = std::max(spec.call_a, spec.call_b);

  machine.AddThread("reorderer", 0, [&] {
    // Sequential prefix: every pre-pair call except the concurrent pair, in
    // program order, so resource dependencies of the pair are satisfied.
    for (std::size_t k = 0; k < pair_end; ++k) {
      if (k == spec.call_a || k == spec.call_b) {
        continue;
      }
      const Call& call = spec.prog.calls[k];
      results[k] = kernel.InvokeByName(call.desc->name, ResolveArgs(call, results));
    }
    if (kernel.crashed()) {
      return;  // crashed in the prefix: nothing to test
    }
    // Install the hint: reorder controls for this thread (Table 2 syscalls),
    // then arm the breakpoint so occurrences count from call_a's start.
    ThreadId tid = oemu::Runtime::CurrentThreadId();
    for (const DynAccess& a : spec.hint.reorder) {
      if (spec.hint.store_test) {
        runtime.DelayStoreAt(tid, a.instr, a.occurrence);
      } else {
        runtime.ReadOldValueAt(tid, a.instr, a.occurrence);
      }
    }
    machine.ArmPlan();
    const Call& call = spec.prog.calls[spec.call_a];
    results[spec.call_a] = kernel.InvokeByName(call.desc->name, ResolveArgs(call, results));
    runtime.ClearControls(tid);
  });

  machine.AddThread("observer", 1, [&] {
    if (kernel.crashed()) {
      return;
    }
    const Call& call = spec.prog.calls[spec.call_b];
    results[spec.call_b] = kernel.InvokeByName(call.desc->name, ResolveArgs(call, results));
  });

  machine.Run();

  // Epilogue calls run after both concurrent calls completed (host thread;
  // the machine is quiescent).
  for (std::size_t k = pair_end + 1; k < spec.prog.calls.size() && !kernel.crashed(); ++k) {
    const Call& call = spec.prog.calls[k];
    results[k] = kernel.InvokeByName(call.desc->name, ResolveArgs(call, results));
  }

  result.results = results;
  result.ret_a = results[spec.call_a];
  result.ret_b = results[spec.call_b];
  result.switch_fired = machine.plan_points_consumed() > 0;
  result.stats = runtime.stats();
  if (kernel.crashed()) {
    result.crashed = true;
    result.crash = *kernel.crash();
  }
  runtime.Deactivate();
  return result;
}

}  // namespace ozz::fuzz
