#include "src/fuzz/executor.h"

#include <algorithm>
#include <memory>

#include "src/base/check.h"
#include "src/base/log.h"
#include "src/fuzz/profile.h"
#include "src/obs/metrics.h"
#include "src/obs/prof.h"
#include "src/obs/trace.h"
#include "src/obs/trace_io.h"
#include "src/oemu/instr.h"
#include "src/rt/machine.h"

namespace ozz::fuzz {
namespace {

// Resolves ids through the process's InstrRegistry for serialization.
// Unregistered ids (synthetic traces in tests) are left out of the table.
bool ResolveInstr(InstrId id, obs::InstrTableEntry* out) {
  if (id == kInvalidInstr || id > oemu::InstrRegistry::Count()) {
    return false;
  }
  const oemu::InstrInfo& info = oemu::InstrRegistry::Info(id);
  out->line = info.line;
  out->kind = static_cast<u8>(info.kind);
  out->file = info.file;
  out->function = info.function;
  out->expr = info.expr;
  return true;
}

obs::TraceMeta MetaFor(const MtiSpec& spec, const MtiOptions& options,
                       const MtiResult& result) {
  obs::TraceMeta meta;
  meta.has_hint = true;
  meta.store_test = spec.hint.store_test;
  meta.sched_before = spec.hint.sched_phase == rt::SwitchWhen::kBeforeAccess;
  meta.sched_instr = spec.hint.sched.instr;
  meta.sched_occurrence = spec.hint.sched.occurrence;
  for (const DynAccess& a : spec.hint.reorder) {
    obs::TraceMember m;
    m.instr = a.instr;
    m.occurrence = a.occurrence;
    m.is_store = spec.hint.store_test;
    meta.members.push_back(m);
  }
  meta.label = options.trace_label;
  if (result.crashed) {
    meta.crash_title = result.crash.title;
  }
  meta.model = oemu::MemoryModel::Resolve(options.model).name();
  return meta;
}

}  // namespace

MtiResult RunMti(const MtiSpec& spec, const MtiOptions& options) {
  obs::PhaseTimer phase_timer(obs::Phase::kExecute);
  MtiResult result;
  OZZ_CHECK(spec.call_a < spec.prog.calls.size());
  OZZ_CHECK(spec.call_b < spec.prog.calls.size());
  // An irq-injection test interrupts call_a on its own CPU — there is no
  // separate observer call, so the pair may name the same call twice.
  OZZ_CHECK(spec.call_a != spec.call_b || spec.hint.irq_test);

  // The recorder spans the whole execution so prefix-call activity (which can
  // explain a never-armed hint) is in the trace too.
  std::unique_ptr<obs::TraceRecorder> recorder;
  if (!options.trace_path.empty()) {
    recorder = std::make_unique<obs::TraceRecorder>();
    recorder->Activate();
  }

  oemu::Runtime::Options rt_opts;
  rt_opts.reordering_enabled = options.reordering;
  rt_opts.model = options.model;
  oemu::Runtime runtime(rt_opts);
  rt::Machine machine(2);
  runtime.Activate(&machine);
  osk::Kernel kernel(options.kernel_config);
  kernel.Attach(&machine, &runtime);
  osk::InstallDefaultSubsystems(kernel);

  // The plan targets occurrences counted from the start of call_a; keep it
  // disarmed through the sequential prefix.
  machine.SetPlanArmed(false);
  rt::SchedPlan plan;
  plan.first = 0;
  rt::SchedPoint point;
  point.thread = 0;
  point.instr = spec.hint.sched.instr;
  point.occurrence = spec.hint.sched.occurrence;
  point.when = spec.hint.sched_phase;
  point.next = 1;
  point.fire_irq = spec.hint.irq_test;
  plan.points.push_back(point);
  machine.SetPlan(plan);

  std::vector<long> results(spec.prog.calls.size(), -1);

  const std::size_t pair_end = std::max(spec.call_a, spec.call_b);

  machine.AddThread("reorderer", 0, [&] {
    // Sequential prefix: every pre-pair call except the concurrent pair, in
    // program order, so resource dependencies of the pair are satisfied.
    for (std::size_t k = 0; k < pair_end; ++k) {
      if (k == spec.call_a || k == spec.call_b) {
        continue;
      }
      const Call& call = spec.prog.calls[k];
      results[k] = kernel.InvokeByName(call.desc->name, ResolveArgs(call, results));
    }
    if (kernel.crashed()) {
      return;  // crashed in the prefix: nothing to test
    }
    // Install the hint: reorder controls for this thread (Table 2 syscalls),
    // then arm the breakpoint so occurrences count from call_a's start.
    ThreadId tid = oemu::Runtime::CurrentThreadId();
    for (const DynAccess& a : spec.hint.reorder) {
      // With reordering disabled the runtime ignores the controls entirely —
      // the hint is never armed (the trace triage agrees: a baseline run's
      // hint lifecycle is "never-armed").
      if (options.reordering) {
        ++result.hint_armed;
        OZZ_TRACE_EMIT(obs::EvType::kHintArm, tid, 0, a.instr, a.occurrence,
                       spec.hint.store_test ? 1 : 0);
      }
      if (spec.hint.store_test) {
        runtime.DelayStoreAt(tid, a.instr, a.occurrence);
      } else {
        runtime.ReadOldValueAt(tid, a.instr, a.occurrence);
      }
    }
    machine.ArmPlan();
    const Call& call = spec.prog.calls[spec.call_a];
    results[spec.call_a] = kernel.InvokeByName(call.desc->name, ResolveArgs(call, results));
    runtime.ClearControls(tid);
  });

  machine.AddThread("observer", 1, [&] {
    if (kernel.crashed()) {
      return;
    }
    if (spec.hint.irq_test && spec.call_a == spec.call_b) {
      return;  // the "observer" is the injected handler on CPU 0 itself
    }
    const Call& call = spec.prog.calls[spec.call_b];
    results[spec.call_b] = kernel.InvokeByName(call.desc->name, ResolveArgs(call, results));
  });

  machine.Run();

  // Epilogue calls run after both concurrent calls completed (host thread;
  // the machine is quiescent).
  for (std::size_t k = pair_end + 1; k < spec.prog.calls.size() && !kernel.crashed(); ++k) {
    const Call& call = spec.prog.calls[k];
    results[k] = kernel.InvokeByName(call.desc->name, ResolveArgs(call, results));
  }

  result.results = results;
  result.ret_a = results[spec.call_a];
  result.ret_b = results[spec.call_b];
  result.switch_fired = machine.plan_points_consumed() > 0;
  result.stats = runtime.stats();
  result.hint_hits = spec.hint.store_test
                         ? result.stats.spec_delayed_stores
                         : result.stats.spec_stale_loads + result.stats.spec_fresh_loads;
  if (kernel.crashed()) {
    result.crashed = true;
    result.crash = *kernel.crash();
  }
  runtime.Deactivate();

  {
    obs::Metrics& metrics = obs::Metrics::Global();
    metrics.GetCounter("fuzz.mti_runs").Add();
    metrics.GetCounter("fuzz.hints_armed").Add(result.hint_armed);
    if (result.hint_hits > 0) {
      metrics.GetCounter("fuzz.hints_hit").Add();
    }
    if (result.crashed) {
      metrics.GetCounter("fuzz.hints_triggered").Add();
    }
  }

  if (recorder != nullptr) {
    recorder->Deactivate();
    std::string error;
    if (!obs::WriteTraceFile(options.trace_path, MetaFor(spec, options, result),
                             recorder->Collect(), ResolveInstr, &error)) {
      OZZ_LOG(Warn) << "trace not written: " << error;
    }
  }
  return result;
}

}  // namespace ozz::fuzz
