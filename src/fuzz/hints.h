// Scheduling-hint calculation (§4.3, Algorithms 1 and 2).
//
// Given the profiled traces of two syscalls, computes the set of hypothetical
// memory barrier tests to run: each hint names a scheduling point (where the
// custom scheduler interleaves) and the set of dynamic accesses OEMU must
// reorder (delay for the store-barrier test, read-old for the load-barrier
// test). Hints are sorted by reorder-set size, largest first — the paper's
// search heuristic.
//
// Reorder-set shapes per group (accesses between two barriers of the tested
// type):
//   * store test (Fig. 5a): scheduling point = last access of the group,
//     switch AFTER it; reorder sets are the prefixes of the group's stores
//     (the paper's moving hypothetical barrier) plus — as a documented
//     extension — the contiguous suffixes ending before the last store,
//     emulating a non-FIFO store buffer that already drained the older
//     stores. Several real bugs (e.g. Figure 8 / RDS) need the suffix shape.
//   * load test (Fig. 5b): scheduling point = first access of the group,
//     switch BEFORE it; reorder sets are the suffixes of the group's loads.
#ifndef OZZ_SRC_FUZZ_HINTS_H_
#define OZZ_SRC_FUZZ_HINTS_H_

#include <string>
#include <vector>

#include "src/analysis/ordering.h"
#include "src/oemu/event.h"
#include "src/rt/sched_plan.h"

namespace ozz::fuzz {

struct DynAccess {
  InstrId instr = kInvalidInstr;
  u32 occurrence = 1;
  oemu::AccessType type = oemu::AccessType::kLoad;

  bool operator==(const DynAccess&) const = default;
};

struct SchedHint {
  bool store_test = true;  // hypothetical store barrier vs load barrier test
  DynAccess sched;         // scheduling point (on the reordering syscall)
  rt::SwitchWhen sched_phase = rt::SwitchWhen::kAfterAccess;
  std::vector<DynAccess> reorder;  // delay-store / read-old set
  bool suffix_shape = false;       // produced by the suffix extension
  // The axiomatic engine found a concrete execution in which some reorder
  // member's inversion is observable; such hints are scheduled first.
  bool witnessed = false;
  // Interrupt-injection test (the STI interrupt pass): instead of switching
  // to an observer thread at the scheduling point, the scheduler delivers a
  // virtual interrupt on the reordering thread itself
  // (rt::SchedPoint::fire_irq; deferred while local irqs are masked). The
  // reorder set is empty — the test perturbs the interleaving against this
  // CPU's own hardirq handler, not the memory order.
  bool irq_test = false;

  std::string ToString() const;
};

struct HintOptions {
  bool store_tests = true;
  bool load_tests = true;
  // Memory-model backend the hints assume (barrier grouping, which test
  // passes apply at all, prune-tier rules). Must match the model the
  // executing runtime uses; nullptr resolves to lkmm. Under a model without
  // versioned loads (tso, pso) the load-test pass is skipped entirely, and
  // under one without delayed stores the store-test pass is.
  const oemu::MemoryModel* model = nullptr;
  // Enables the suffix-shaped store reorder sets (extension; see above).
  bool suffix_store_hints = true;
  // Static ordering pre-filter (src/analysis): drops hints whose every
  // reorder member is provably a no-op under the emulated memory model
  // (undelayable/unversionable accesses, coherence, qualified locksets) —
  // the dynamic test cannot observe anything an in-order run would not.
  bool static_prune = true;
  // Second tier (src/analysis/axiomatic.h): bounded model checking of the
  // pairs the static tier could not discharge. A hint is dropped only when
  // every member is either statically proven or refuted exactly; witnessed
  // members rank their hint first, bounded-out members keep it alive.
  bool axiomatic_prune = true;
  // Candidate executions per pair check for the axiomatic tier (the fuzzer
  // hot path uses a tight budget; ozz_analyze and the benches use more).
  u64 axiomatic_budget = 4096;
  std::size_t max_hints = 256;
};

// Accounting for both prune tiers, accumulated across calls.
struct HintStats {
  u64 hints_generated = 0;        // before pruning and the max_hints cap
  u64 hints_pruned_static = 0;    // dropped by the static ordering proofs
  u64 hints_pruned_axiomatic = 0;  // dropped by exact axiomatic refutation
  // Axiomatic verdicts over the distinct (member, sched) pairs checked.
  u64 pairs_witnessed = 0;
  u64 pairs_refuted = 0;
  u64 pairs_bounded = 0;
  analysis::PairStats pairs;  // candidate-pair universe over the raw traces

  u64 hints_pruned() const { return hints_pruned_static + hints_pruned_axiomatic; }

  void Add(const HintStats& o) {
    hints_generated += o.hints_generated;
    hints_pruned_static += o.hints_pruned_static;
    hints_pruned_axiomatic += o.hints_pruned_axiomatic;
    pairs_witnessed += o.pairs_witnessed;
    pairs_refuted += o.pairs_refuted;
    pairs_bounded += o.pairs_bounded;
    pairs.Add(o.pairs);
  }
};

// Algorithm 2: returns a copy of `trace` with accesses that touch no memory
// shared with `other` (where at least one side writes) filtered out.
// Barriers are preserved.
oemu::Trace FilterShared(const oemu::Trace& trace, const oemu::Trace& other);

// Algorithm 1: hints for the case where the syscall traced by `reorder_trace`
// performs the reordering and the one traced by `other_trace` observes.
// When `stats` is non-null it accumulates pre-filter accounting (pair stats
// are gathered even with static_prune off, so ablations can report the
// would-be numbers).
std::vector<SchedHint> ComputeHints(const oemu::Trace& reorder_trace,
                                    const oemu::Trace& other_trace,
                                    const HintOptions& options = {},
                                    HintStats* stats = nullptr);

// Interrupt-injection hints for one profiled call (the STI interrupt pass):
// one irq_test hint per dynamic access of `trace`, firing a virtual
// interrupt right after that access executes — the brute-force enumeration
// of interrupt points a same-CPU irq race needs. Order follows the trace;
// the fuzzer's --sti-guide reprioritizes (never drops) using the static
// irq-racy verdicts.
std::vector<SchedHint> ComputeIrqHints(const oemu::Trace& trace, std::size_t max_hints);

}  // namespace ozz::fuzz

#endif  // OZZ_SRC_FUZZ_HINTS_H_
