#include "src/fuzz/static_guide.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "src/fuzz/profile.h"
#include "src/oemu/instr.h"

namespace ozz::fuzz {
namespace {

namespace srcmodel = analysis::srcmodel;

GuideKey KeyOf(const srcmodel::AccessSite& site) {
  return {site.file, static_cast<u32>(site.line)};
}

bool RegisteredKey(InstrId id, GuideKey* key) {
  if (id == kInvalidInstr || id > oemu::InstrRegistry::Count()) {
    return false;
  }
  const oemu::InstrInfo& info = oemu::InstrRegistry::Info(id);
  key->first = srcmodel::NormalizeSrcPath(info.file);
  key->second = info.line;
  return true;
}

}  // namespace

CoverageGap CrossCheckCoverage(const srcmodel::AuditReport& report,
                               const osk::KernelConfig& config) {
  CoverageGap gap;
  gap.static_sites = static_cast<int>(report.site_list.size());

  // Profile the seed programs (one per subsystem — the deterministic part of
  // every campaign) and collect (a) every profiled site and (b) the site set
  // each hint's sched/reorder members cover, per ordered call pair.
  osk::Kernel kernel(config);
  osk::InstallDefaultSubsystems(kernel);
  std::set<GuideKey> profiled;
  std::vector<std::set<GuideKey>> hint_sets;
  HintOptions hint_options;
  hint_options.axiomatic_prune = false;  // exactness not needed for the join
  for (const Prog& seed : SeedPrograms(kernel.table())) {
    ProgProfile profile = ProfileProg(seed, config);
    if (profile.crashed) {
      continue;
    }
    for (InstrId id : profile.coverage) {
      GuideKey key;
      if (RegisteredKey(id, &key)) {
        profiled.insert(std::move(key));
      }
    }
    for (std::size_t a = 0; a < profile.calls.size(); ++a) {
      for (std::size_t b = 0; b < profile.calls.size(); ++b) {
        if (a == b) {
          continue;
        }
        std::set<GuideKey> covered;
        for (const SchedHint& hint :
             ComputeHints(profile.calls[a].trace, profile.calls[b].trace, hint_options)) {
          GuideKey key;
          if (RegisteredKey(hint.sched.instr, &key)) {
            covered.insert(std::move(key));
          }
          for (const DynAccess& access : hint.reorder) {
            if (RegisteredKey(access.instr, &key)) {
              covered.insert(std::move(key));
            }
          }
        }
        if (!covered.empty()) {
          hint_sets.push_back(std::move(covered));
        }
      }
    }
  }

  std::set<GuideKey> seen_sites;
  for (const srcmodel::AccessSite& site : report.site_list) {
    if (!seen_sites.insert(KeyOf(site)).second) {
      continue;  // one entry per (file, line), not per store/load side
    }
    if (profiled.count(KeyOf(site)) != 0) {
      gap.profiled_sites += 1;
    } else {
      gap.unprofiled.push_back(site);
    }
  }

  for (const srcmodel::AuditPair& pair : report.pairs) {
    const GuideKey a = KeyOf(pair.first);
    const GuideKey b = KeyOf(pair.second);
    bool tested = false;
    for (const std::set<GuideKey>& covered : hint_sets) {
      if (covered.count(a) != 0 && covered.count(b) != 0) {
        tested = true;
        break;
      }
    }
    if (tested) {
      gap.tested_pairs += 1;
    } else {
      gap.untested_pairs.push_back(pair);
    }
  }
  return gap;
}

std::string FormatCoverageGap(const CoverageGap& gap) {
  std::ostringstream out;
  out << "== coverage cross-check (static sites vs seed-corpus profile) ==\n";
  out << "static sites: " << gap.static_sites << "  profiled: " << gap.profiled_sites
      << "  never profiled: " << gap.unprofiled.size() << "\n";
  out << "statically-unordered pairs hint-tested: " << gap.tested_pairs
      << "  never tested: " << gap.untested_pairs.size() << "\n";
  for (const auto& site : gap.unprofiled) {
    out << "  never profiled: " << site.file << ":" << site.line << " " << site.function << " "
        << site.expr << "\n";
  }
  for (const auto& pair : gap.untested_pairs) {
    out << "  never hint-tested: [" << srcmodel::PairClassName(pair.cls) << "] "
        << pair.first.file << ":" << pair.first.line << " -> :" << pair.second.line
        << (pair.fix_gated ? " (fix-gated)" : "") << "\n";
  }
  return out.str();
}

std::string CoverageGapJsonMember(const CoverageGap& gap) {
  std::ostringstream out;
  out << "\"coverage\": {\"static_sites\":" << gap.static_sites
      << ",\"profiled_sites\":" << gap.profiled_sites << ",\"tested_pairs\":" << gap.tested_pairs
      << ",\"unprofiled\":[";
  for (std::size_t i = 0; i < gap.unprofiled.size(); ++i) {
    const auto& site = gap.unprofiled[i];
    out << (i > 0 ? "," : "") << "{\"file\":\"" << srcmodel::JsonEscape(site.file)
        << "\",\"line\":" << site.line << ",\"expr\":\"" << srcmodel::JsonEscape(site.expr)
        << "\"}";
  }
  out << "],\"untested_pairs\":[";
  for (std::size_t i = 0; i < gap.untested_pairs.size(); ++i) {
    const auto& pair = gap.untested_pairs[i];
    out << (i > 0 ? "," : "") << "{\"identity\":\"" << srcmodel::JsonEscape(pair.Identity())
        << "\",\"fix_gated\":" << (pair.fix_gated ? "true" : "false") << "}";
  }
  out << "]}";
  return out.str();
}

std::vector<GuideSite> GuideSitesFromReport(const srcmodel::AuditReport& report) {
  std::vector<GuideSite> out;
  std::set<GuideKey> seen;
  auto add = [&](const srcmodel::AccessSite& site) {
    GuideKey key = KeyOf(site);
    if (seen.insert(key).second) {
      out.push_back(GuideSite{key.first, key.second});
    }
  };
  for (const srcmodel::AuditPair& pair : report.pairs) {  // gated come first
    add(pair.first);
    add(pair.second);
  }
  return out;
}

std::vector<GuideSite> GuideSitesFromRaces(const srcmodel::RaceReport& report) {
  std::vector<GuideSite> out;
  std::set<GuideKey> seen;
  auto add = [&](const srcmodel::AccessSite& site) {
    GuideKey key = KeyOf(site);
    if (seen.insert(key).second) {
      out.push_back(GuideSite{key.first, key.second});
    }
  };
  for (const srcmodel::RacePair& pair : report.races) {  // gated come first
    add(pair.first);
    add(pair.second);
  }
  return out;
}

std::vector<GuideSite> GuideSitesFromIrqRaces(const srcmodel::RaceReport& report) {
  std::vector<GuideSite> out;
  std::set<GuideKey> seen;
  auto add = [&](const srcmodel::AccessSite& site) {
    GuideKey key = KeyOf(site);
    if (seen.insert(key).second) {
      out.push_back(GuideSite{key.first, key.second});
    }
  };
  for (const srcmodel::RacePair& pair : report.races) {  // gated come first
    if (!pair.irq || !(pair.irq_racy_buggy || pair.irq_racy_fixed)) {
      continue;
    }
    add(pair.first);
    add(pair.second);
  }
  return out;
}

}  // namespace ozz::fuzz
