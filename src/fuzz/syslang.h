// Program representation and generation (§4.2, step 1).
//
// A Prog is a single-threaded input (STI): a sequence of syscalls whose
// arguments are filled from the typed descriptors of the syscall table.
// Resource arguments reference the *result* of an earlier call in the same
// program (like a Syzlang fd flowing from open to write), so generated
// programs are valid by construction.
#ifndef OZZ_SRC_FUZZ_SYSLANG_H_
#define OZZ_SRC_FUZZ_SYSLANG_H_

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/osk/syscall.h"

namespace ozz::fuzz {

struct ArgValue {
  i64 value = 0;     // literal, or ignored when ref_call >= 0
  i32 ref_call = -1; // index of the producing call whose result to substitute
};

struct Call {
  // Borrowed from the syscall table the program was generated against; the
  // Kernel owning that table must outlive the Prog. Executors re-resolve by
  // desc->name against their own (fresh) kernel instance.
  const osk::SyscallDesc* desc = nullptr;
  std::vector<ArgValue> args;
};

struct Prog {
  std::vector<Call> calls;

  std::string ToString() const;
};

class ProgGenerator {
 public:
  ProgGenerator(const osk::SyscallTable& table, base::Rng* rng);

  // Generates a program of up to `max_calls` calls, biased toward staying
  // within one subsystem (concurrency bugs live between calls that share
  // state). Producers for required resources are inserted automatically.
  Prog Generate(std::size_t max_calls);

  // Mutates a program: append / replace a call or perturb an argument.
  Prog Mutate(const Prog& prog, std::size_t max_calls);

 private:
  // Appends `desc` to prog, recursively appending producers for resource
  // arguments first. Returns false if a producer type has no producer.
  bool Append(Prog* prog, const osk::SyscallDesc* desc, int depth);
  void FillArgs(Prog* prog, Call* call);
  const osk::SyscallDesc* ProducerFor(const std::string& resource) const;
  int FindProducedBefore(const Prog& prog, const std::string& resource,
                         std::size_t limit) const;

  const osk::SyscallTable& table_;
  base::Rng* rng_;
  std::vector<std::string> subsystems_;
};

// Hand-written canonical programs per subsystem — the reproduction's stand-in
// for the syzkaller seed corpus used in §6.2. Every Table 3/4 scenario has a
// seed that reaches its racy pair.
std::vector<Prog> SeedPrograms(const osk::SyscallTable& table);

// A seed for one named subsystem (empty prog if unknown).
Prog SeedProgramFor(const osk::SyscallTable& table, const std::string& subsystem);

}  // namespace ozz::fuzz

#endif  // OZZ_SRC_FUZZ_SYSLANG_H_
