// Coverage-guided corpus (§4.2): programs that contributed new instruction
// coverage are kept and later mutated, the standard syzkaller loop.
#ifndef OZZ_SRC_FUZZ_CORPUS_H_
#define OZZ_SRC_FUZZ_CORPUS_H_

#include <set>
#include <vector>

#include "src/base/rng.h"
#include "src/fuzz/syslang.h"

namespace ozz::fuzz {

class Corpus {
 public:
  // Adds `prog` if its coverage contains instructions never seen before.
  // Returns true when the program was kept. `guide_score` is the number of
  // untested static-guide sites the program covers (0 when unguided); it
  // only biases Pick, never the keep decision.
  bool Add(Prog prog, const std::set<InstrId>& coverage, std::size_t guide_score = 0);

  bool empty() const { return progs_.empty(); }
  std::size_t size() const { return progs_.size(); }
  std::size_t coverage_size() const { return covered_.size(); }

  // Uniform pick — except when some program has a positive guide score, in
  // which case half the picks come from the top-scored programs (the
  // --static-guide corpus bias).
  const Prog& Pick(base::Rng& rng) const;

 private:
  std::vector<Prog> progs_;
  std::vector<std::size_t> guide_scores_;  // parallel to progs_
  std::set<InstrId> covered_;
};

}  // namespace ozz::fuzz

#endif  // OZZ_SRC_FUZZ_CORPUS_H_
