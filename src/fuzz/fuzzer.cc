#include "src/fuzz/fuzzer.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

#include "src/analysis/srcmodel/srcmodel.h"
#include "src/base/check.h"
#include "src/base/log.h"
#include "src/fuzz/profile.h"
#include "src/obs/metrics.h"
#include "src/oemu/instr.h"

namespace ozz::fuzz {
namespace {

// Joins a dynamic instruction onto the audit's (normalized file, line) key.
// Unregistered ids (synthetic traces in tests) yield no key.
bool InstrKey(InstrId id, GuideKey* key) {
  if (id == kInvalidInstr || id > oemu::InstrRegistry::Count()) {
    return false;
  }
  const oemu::InstrInfo& info = oemu::InstrRegistry::Info(id);
  key->first = analysis::srcmodel::NormalizeSrcPath(info.file);
  key->second = info.line;
  return true;
}

}  // namespace

std::vector<std::pair<std::size_t, std::size_t>> GuidedPairOrder(
    const ProgProfile& profile, const std::set<GuideKey>& guide_sites,
    const std::set<GuideKey>& already_tested) {
  const std::size_t n = profile.calls.size();
  // Untested guide sites touched by each call's trace.
  std::vector<std::set<GuideKey>> touched(n);
  if (!guide_sites.empty()) {
    for (std::size_t c = 0; c < n; ++c) {
      for (const oemu::Event& ev : profile.calls[c].trace) {
        GuideKey key;
        if (!InstrKey(ev.instr, &key)) {
          continue;
        }
        if (guide_sites.count(key) != 0 && already_tested.count(key) == 0) {
          touched[c].insert(std::move(key));
        }
      }
    }
  }
  struct Scored {
    std::size_t a;
    std::size_t b;
    std::size_t score;
  };
  std::vector<Scored> scored;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) {
        continue;
      }
      std::set<GuideKey> both = touched[a];
      both.insert(touched[b].begin(), touched[b].end());
      scored.push_back(Scored{a, b, both.size()});
    }
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& x, const Scored& y) { return x.score > y.score; });
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(scored.size());
  for (const Scored& s : scored) {
    out.emplace_back(s.a, s.b);
  }
  return out;
}

std::string CampaignToJson(const CampaignResult& result) {
  std::ostringstream os;
  const HintStats& hs = result.hint_stats;
  os << "{\"model\":\"" << result.model << "\""
     << ",\"mti_runs\":" << result.mti_runs << ",\"sti_runs\":" << result.sti_runs
     << ",\"corpus_size\":" << result.corpus_size << ",\"coverage\":" << result.coverage
     << ",\"hints_generated\":" << hs.hints_generated << ",\"hints_pruned\":" << hs.hints_pruned()
     << ",\"hints_pruned_static\":" << hs.hints_pruned_static
     << ",\"hints_pruned_axiomatic\":" << hs.hints_pruned_axiomatic
     << ",\"pairs_witnessed\":" << hs.pairs_witnessed
     << ",\"pairs_refuted\":" << hs.pairs_refuted
     << ",\"pairs_bounded\":" << hs.pairs_bounded
     << ",\"pair_candidates\":" << hs.pairs.candidates()
     << ",\"pair_proven\":" << hs.pairs.proven()
     << ",\"guide_sites\":" << result.guide_sites
     << ",\"guide_sites_tested\":" << result.guide_sites_tested
     << ",\"sti_guide_sites\":" << result.sti_guide_sites
     << ",\"sti_guide_sites_tested\":" << result.sti_guide_sites_tested
     << ",\"interrupted\":" << (result.interrupted ? "true" : "false")
     << ",\"metrics\":" << (result.metrics_json.empty() ? "{}" : result.metrics_json)
     << ",\"bugs\":[";
  for (std::size_t i = 0; i < result.bugs.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    const FoundBug& bug = result.bugs[i];
    std::string report = BugReportToJson(bug.report);
    // Fold per-discovery metadata into the report object.
    report.back() = ',';
    os << report << "\"found_at_test\":" << bug.found_at_test
       << ",\"hint_rank\":" << bug.hint_rank << "}";
  }
  os << "]}";
  return os.str();
}

const FoundBug* CampaignResult::FindByTitle(const std::string& needle) const {
  for (const FoundBug& b : bugs) {
    if (b.report.title.find(needle) != std::string::npos) {
      return &b;
    }
  }
  return nullptr;
}

Fuzzer::Fuzzer(FuzzerOptions options) : options_(std::move(options)), rng_(options_.seed) {
  // One source of truth for the campaign's memory model: resolve it once and
  // force the hint options onto it (a mismatched hints.model would compute
  // hints the executing runtime cannot honor).
  options_.model = &oemu::MemoryModel::Resolve(options_.model);
  options_.hints.model = options_.model;
  // The template kernel exists only to expose the syscall table to the
  // generator; it is never executed.
  template_kernel_ = std::make_unique<osk::Kernel>(options_.kernel_config);
  osk::InstallDefaultSubsystems(*template_kernel_);
  generator_ = std::make_unique<ProgGenerator>(template_kernel_->table(), &rng_);
  for (const GuideSite& site : options_.static_guide) {
    guide_sites_.insert({analysis::srcmodel::NormalizeSrcPath(site.file), site.line});
  }
  for (const GuideSite& site : options_.sti_guide) {
    sti_guide_sites_.insert({analysis::srcmodel::NormalizeSrcPath(site.file), site.line});
  }
}

Fuzzer::~Fuzzer() = default;

const osk::SyscallTable& Fuzzer::table() const { return template_kernel_->table(); }

void Fuzzer::RecordBug(const MtiSpec& spec, const MtiResult& mti, std::size_t hint_rank,
                       CampaignResult* result) {
  for (const FoundBug& existing : result->bugs) {
    if (existing.report.title == mti.crash.title) {
      return;  // duplicate crash title
    }
  }
  FoundBug bug;
  bug.report = MakeBugReport(spec, mti);
  bug.spec = spec;
  bug.found_at_test = result->mti_runs;
  bug.hint_rank = hint_rank;
  bug.by_largest_hint = hint_rank == 0;
  OZZ_LOG(Info) << "new bug after " << result->mti_runs << " tests: " << bug.report.title;
  result->bugs.push_back(std::move(bug));
}

std::size_t Fuzzer::GuideScore(const std::set<InstrId>& coverage) const {
  if (guide_sites_.empty()) {
    return 0;
  }
  std::set<GuideKey> hit;
  for (InstrId id : coverage) {
    GuideKey key;
    if (InstrKey(id, &key) && guide_sites_.count(key) != 0 && guide_tested_.count(key) == 0) {
      hit.insert(std::move(key));
    }
  }
  return hit.size();
}

void Fuzzer::MarkHintTested(const SchedHint& hint) {
  if (guide_sites_.empty()) {
    return;
  }
  auto mark = [&](InstrId id) {
    GuideKey key;
    if (InstrKey(id, &key) && guide_sites_.count(key) != 0) {
      guide_tested_.insert(std::move(key));
    }
  };
  mark(hint.sched.instr);
  for (const DynAccess& access : hint.reorder) {
    mark(access.instr);
  }
}

std::size_t Fuzzer::StiBudget() const {
  return options_.max_sti_runs != 0 ? options_.max_sti_runs : options_.max_mti_runs;
}

bool Fuzzer::Exhausted(const CampaignResult& result) const {
  if (options_.stop_flag != nullptr &&
      options_.stop_flag->load(std::memory_order_relaxed)) {
    return true;
  }
  return result.mti_runs >= options_.max_mti_runs || result.sti_runs >= StiBudget() ||
         result.bugs.size() >= options_.stop_after_bugs;
}

bool Fuzzer::TestProg(const Prog& prog, CampaignResult* result) {
  if (prog.calls.empty()) {
    return false;
  }
  ProgProfile profile = ProfileProg(prog, options_.kernel_config, options_.model);
  ++result->sti_runs;
  if (profile.crashed) {
    // A sequential (non-concurrency) crash — out of scope for OZZ but worth
    // surfacing, as syzkaller would.
    OZZ_LOG(Warn) << "STI crashed sequentially: " << profile.crash.title;
    return false;
  }
  corpus_.Add(prog, profile.coverage, GuideScore(profile.coverage));

  // Hypothetical-barrier tests for every ordered pair of calls. With a
  // static guide, pairs touching untested suspicious sites go first; the
  // pair set itself is unchanged (guidance reorders, never drops).
  std::size_t pairs_tested = 0;
  for (const auto& [a, b] : GuidedPairOrder(profile, guide_sites_, guide_tested_)) {
    if (pairs_tested >= options_.max_pairs_per_prog) {
      continue;
    }
    {
      std::vector<SchedHint> hints = ComputeHints(profile.calls[a].trace, profile.calls[b].trace,
                                                  options_.hints, &result->hint_stats);
      for (const SchedHint& hint : hints) {
        MarkHintTested(hint);
      }
      if (hints.empty()) {
        continue;
      }
      ++pairs_tested;

      // Remember heuristic ranks before applying the (ablation) order.
      std::vector<std::pair<SchedHint, std::size_t>> ordered;
      ordered.reserve(hints.size());
      for (std::size_t i = 0; i < hints.size(); ++i) {
        ordered.emplace_back(std::move(hints[i]), i);
      }
      switch (options_.hint_order) {
        case FuzzerOptions::HintOrder::kHeuristic:
          break;
        case FuzzerOptions::HintOrder::kReverse:
          std::reverse(ordered.begin(), ordered.end());
          break;
        case FuzzerOptions::HintOrder::kRandom:
          rng_.Shuffle(ordered);
          break;
      }

      for (const auto& [hint, rank] : ordered) {
        if (Exhausted(*result)) {
          return true;
        }
        MtiSpec spec;
        spec.prog = prog;
        spec.call_a = a;
        spec.call_b = b;
        spec.hint = hint;
        MtiOptions mti_opts;
        mti_opts.kernel_config = options_.kernel_config;
        mti_opts.reordering = options_.reordering;
        mti_opts.model = options_.model;
        if (!options_.trace_dir.empty()) {
          std::ostringstream path;
          path << options_.trace_dir << "/mti_" << std::setw(6) << std::setfill('0')
               << result->mti_runs << ".ozztrace";
          mti_opts.trace_path = path.str();
          mti_opts.trace_label = prog.calls[a].desc->name + std::string(" || ") +
                                 prog.calls[b].desc->name;
        }
        MtiResult mti = RunMti(spec, mti_opts);
        ++result->mti_runs;
        if (mti.crashed) {
          RecordBug(spec, mti, rank, result);
        }
      }
    }
  }
  if (TestIrqPoints(prog, profile, result)) {
    return true;
  }
  return Exhausted(*result);
}

bool Fuzzer::TestIrqPoints(const Prog& prog, const ProgProfile& profile,
                           CampaignResult* result) {
  // The interrupt-injection pass (STI interrupt tier): for every call that
  // runs with a hardirq handler armed, enumerate interrupt points over the
  // call's own trace, one MTI each. Same gate as the reorder machinery —
  // the interleaving-only baseline (--no-reorder) is the conventional
  // fuzzer and injects nothing.
  if (!options_.reordering) {
    return false;
  }
  for (std::size_t c = 0; c < profile.calls.size(); ++c) {
    if (!profile.calls[c].irq_armed) {
      continue;
    }
    std::vector<SchedHint> hints =
        ComputeIrqHints(profile.calls[c].trace, options_.max_irq_points_per_call);
    // --sti-guide: injection points on statically irq-racy sites first.
    // Stable and total — guidance reorders the enumeration, never prunes it.
    if (!sti_guide_sites_.empty()) {
      auto score = [&](const SchedHint& h) -> int {
        GuideKey key;
        return InstrKey(h.sched.instr, &key) && sti_guide_sites_.count(key) != 0 ? 1 : 0;
      };
      std::stable_sort(hints.begin(), hints.end(),
                       [&](const SchedHint& x, const SchedHint& y) { return score(x) > score(y); });
    }
    for (std::size_t rank = 0; rank < hints.size(); ++rank) {
      if (Exhausted(*result)) {
        return true;
      }
      const SchedHint& hint = hints[rank];
      {
        GuideKey key;
        if (InstrKey(hint.sched.instr, &key) && sti_guide_sites_.count(key) != 0) {
          sti_guide_tested_.insert(std::move(key));
        }
      }
      MtiSpec spec;
      spec.prog = prog;
      spec.call_a = c;
      spec.call_b = c;
      spec.hint = hint;
      MtiOptions mti_opts;
      mti_opts.kernel_config = options_.kernel_config;
      mti_opts.reordering = options_.reordering;
      mti_opts.model = options_.model;
      if (!options_.trace_dir.empty()) {
        std::ostringstream path;
        path << options_.trace_dir << "/mti_" << std::setw(6) << std::setfill('0')
             << result->mti_runs << ".ozztrace";
        mti_opts.trace_path = path.str();
        mti_opts.trace_label = prog.calls[c].desc->name + std::string(" || irq");
      }
      MtiResult mti = RunMti(spec, mti_opts);
      ++result->mti_runs;
      if (mti.crashed) {
        RecordBug(spec, mti, rank, result);
      }
    }
  }
  return Exhausted(*result);
}

void Fuzzer::Finalize(const obs::MetricsSnapshot& begin, CampaignResult* result) const {
  result->model = oemu::MemoryModel::Resolve(options_.model).name();
  obs::Metrics::Global().GetCounter("fuzz.campaigns." + result->model).Add();
  result->corpus_size = corpus_.size();
  result->coverage = corpus_.coverage_size();
  result->guide_sites = guide_sites_.size();
  result->guide_sites_tested = guide_tested_.size();
  result->sti_guide_sites = sti_guide_sites_.size();
  result->sti_guide_sites_tested = sti_guide_tested_.size();
  result->metrics_json =
      obs::Metrics::ToJson(obs::Metrics::Delta(begin, obs::Metrics::Global().Snapshot()));
  result->interrupted = options_.stop_flag != nullptr &&
                        options_.stop_flag->load(std::memory_order_relaxed);
}

CampaignResult Fuzzer::Run() {
  CampaignResult result;
  const obs::MetricsSnapshot metrics_begin = obs::Metrics::Global().Snapshot();
  if (options_.use_seed_programs) {
    for (const Prog& seed : SeedPrograms(template_kernel_->table())) {
      if (TestProg(seed, &result)) {
        Finalize(metrics_begin, &result);
        return result;
      }
    }
  }
  while (!Exhausted(result)) {
    Prog prog = corpus_.empty() || rng_.OneIn(3)
                    ? generator_->Generate(options_.max_calls)
                    : generator_->Mutate(corpus_.Pick(rng_), options_.max_calls);
    if (TestProg(prog, &result)) {
      break;
    }
  }
  Finalize(metrics_begin, &result);
  return result;
}

CampaignResult Fuzzer::RunProg(const Prog& prog) {
  CampaignResult result;
  const obs::MetricsSnapshot metrics_begin = obs::Metrics::Global().Snapshot();
  Prog current = prog;
  while (!Exhausted(result) && result.bugs.empty()) {
    if (TestProg(current, &result)) {
      break;
    }
    // Mutate the latest variant (resetting to the reproducer occasionally)
    // so the search explores around the seed instead of oscillating on it.
    current = generator_->Mutate(rng_.OneIn(4) ? prog : current, options_.max_calls);
  }
  Finalize(metrics_begin, &result);
  return result;
}

}  // namespace ozz::fuzz
