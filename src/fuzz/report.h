// Bug reports (§4.4): what OZZ hands to the developer — the crash title, the
// reordered accesses that manifested it, and the location of the hypothetical
// memory barrier whose absence the test demonstrated.
#ifndef OZZ_SRC_FUZZ_REPORT_H_
#define OZZ_SRC_FUZZ_REPORT_H_

#include <string>
#include <vector>

#include "src/fuzz/executor.h"

namespace ozz::fuzz {

struct BugReport {
  std::string title;       // dedup key (crash title, syzkaller-style)
  std::string subsystem;   // subsystem of the reordering call
  std::string reorder_type;  // "S-S" (covers S-L) or "L-L", as in Table 4;
                             // "IRQ" for interrupt-injection findings
  std::string hypothetical_barrier;  // suggested barrier location
  std::vector<std::string> reordered_accesses;
  std::string prog;        // the triggering program
  std::string hint;        // the triggering scheduling hint
  std::string oops_detail;
};

BugReport MakeBugReport(const MtiSpec& spec, const MtiResult& result);

// Multi-line human-readable rendering.
std::string FormatBugReport(const BugReport& report);

// Machine-readable rendering of a report (flat JSON object).
std::string BugReportToJson(const BugReport& report);

}  // namespace ozz::fuzz

#endif  // OZZ_SRC_FUZZ_REPORT_H_
