// Crash-report serialization and replay.
//
// OZZ's reports are replayable: a crash is fully determined by (program,
// concurrent pair, scheduling hint). This module serializes an MtiSpec to a
// stable text format and reconstructs it in a fresh process. Instruction
// identities are serialized as source positions (file:line#occurrence) —
// InstrIds are process-local, but call sites are stable — and re-resolved by
// profiling the program once on load.
//
// Format (one item per line, '#' comments allowed):
//   call <name> <arg>...            -- args: literal ints or rN (result refs)
//   pair <a> <b>                    -- indices of the concurrent calls
//   test store|load                 -- hypothetical barrier test type
//   sched <file>:<line>#<occ> before|after
//   reorder <file>:<line>#<occ>
#ifndef OZZ_SRC_FUZZ_REPLAY_H_
#define OZZ_SRC_FUZZ_REPLAY_H_

#include <string>

#include "src/fuzz/executor.h"
#include "src/osk/syscall.h"

namespace ozz::fuzz {

std::string SerializeMtiSpec(const MtiSpec& spec);

// Parses `text` against `table` (for syscall names) and re-resolves the
// hint's source positions by profiling the parsed program under `config`.
// Returns false (with *error set) on malformed input or unresolvable
// positions.
bool ParseMtiSpec(const std::string& text, const osk::SyscallTable& table,
                  const osk::KernelConfig& config, MtiSpec* spec, std::string* error);

}  // namespace ozz::fuzz

#endif  // OZZ_SRC_FUZZ_REPLAY_H_
