// Profiling single-threaded inputs (§4.2, step 2).
//
// Runs an STI sequentially on a fresh kernel while OEMU records, per syscall,
// every memory access (five-tuple: instruction, location, size, type,
// timestamp) and every barrier (three-tuple: instruction, type, timestamp).
// Also derives the instruction-coverage signal (the reproduction's KCov).
#ifndef OZZ_SRC_FUZZ_PROFILE_H_
#define OZZ_SRC_FUZZ_PROFILE_H_

#include <set>

#include "src/fuzz/syslang.h"
#include "src/oemu/event.h"
#include "src/oemu/memory_model.h"
#include "src/osk/kernel.h"

namespace ozz::fuzz {

struct CallProfile {
  oemu::Trace trace;
  long retval = 0;
  // A hardirq handler was registered (RequestIrq) by the time this call
  // returned — the call is a candidate for the interrupt-injection pass
  // (an injected irq has a handler to dispatch to).
  bool irq_armed = false;
};

struct ProgProfile {
  std::vector<CallProfile> calls;
  std::set<InstrId> coverage;  // union of executed instrumented instructions
  bool crashed = false;        // a non-concurrency crash during the STI run
  osk::OopsReport crash;
};

// Runs `prog` single-threaded under a fresh kernel built with `config` and
// returns per-call traces. Deterministic. `model` selects the runtime's
// memory-model backend (nullptr = lkmm); the profile itself runs in order,
// but the model decides which implied barriers the trace records (e.g. a
// relaxed RMW is a full fence under tso), so it must match the model the
// hints and the MTI executions will use.
ProgProfile ProfileProg(const Prog& prog, const osk::KernelConfig& config,
                        const oemu::MemoryModel* model = nullptr);

// Resolves a call's arguments given the results of earlier calls.
std::vector<i64> ResolveArgs(const Call& call, const std::vector<long>& results);

}  // namespace ozz::fuzz

#endif  // OZZ_SRC_FUZZ_PROFILE_H_
