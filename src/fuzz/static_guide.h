// Coverage cross-check between the source-level barrier audit
// (src/analysis/srcmodel) and the dynamic side of the pipeline.
//
// The audit sees every instrumented access in the source; the fuzzer only
// sees the InstrIds its corpus has executed. Joining the two (on normalized
// file path + line) answers two questions the trace-based tiers cannot:
//   (a) which statically-known access sites has the corpus never profiled?
//   (b) which statically-unordered pairs has the hint machinery never
//       actually tested (no hint whose sched/reorder sets cover both
//       endpoints)?
//
// `ozz_fuzz --static-guide` consumes the same join live: guide sites boost
// the scheduling priority of call pairs (and the corpus-pick probability of
// programs) that touch statically-suspicious, not-yet-tested sites. The
// signal is purely a priority boost — it never prunes a hint or skips a
// pair (see tests/static_prune_test.cc).
#ifndef OZZ_SRC_FUZZ_STATIC_GUIDE_H_
#define OZZ_SRC_FUZZ_STATIC_GUIDE_H_

#include <string>
#include <vector>

#include "src/analysis/srcmodel/audit.h"
#include "src/analysis/srcmodel/races.h"
#include "src/fuzz/fuzzer.h"

namespace ozz::fuzz {

struct CoverageGap {
  int static_sites = 0;    // sites the audit knows about
  int profiled_sites = 0;  // of those, sites some seed-corpus profile hit
  int tested_pairs = 0;    // statically-unordered pairs some hint covered
  std::vector<analysis::srcmodel::AccessSite> unprofiled;     // (a)
  std::vector<analysis::srcmodel::AuditPair> untested_pairs;  // (b)
};

// Profiles the seed programs under `config` and joins their traces/hints
// against the audit report. Deterministic (profiling is single-threaded and
// the axiomatic tier is disabled for speed).
CoverageGap CrossCheckCoverage(const analysis::srcmodel::AuditReport& report,
                               const osk::KernelConfig& config);

std::string FormatCoverageGap(const CoverageGap& gap);

// A `"coverage": {...}` JSON member for AuditReportJson's extra slot.
std::string CoverageGapJsonMember(const CoverageGap& gap);

// Guide sites for `ozz_fuzz --static-guide`: the de-duplicated endpoints of
// the audit's pairs, fix-gated pairs first. The fuzzer tracks live which of
// them its hints have covered, so no pre-filtering by coverage is needed.
std::vector<GuideSite> GuideSitesFromReport(const analysis::srcmodel::AuditReport& report);

// Guide sites for `ozz_fuzz --race-guide`: the de-duplicated endpoints of
// the race analyzer's cross-thread racy pairs (fix-gated first — the report
// is already sorted that way). Same contract as the audit guide: a pure
// priority boost, never a prune.
std::vector<GuideSite> GuideSitesFromRaces(const analysis::srcmodel::RaceReport& report);

// Guide sites for `ozz_fuzz --sti-guide`: the endpoints of the analyzer's
// same-CPU irq-racy pairs. The fuzzer's interrupt-injection pass tests
// injection points landing on one of these first. Same contract again:
// prioritization only, the injection enumeration is never pruned.
std::vector<GuideSite> GuideSitesFromIrqRaces(const analysis::srcmodel::RaceReport& report);

}  // namespace ozz::fuzz

#endif  // OZZ_SRC_FUZZ_STATIC_GUIDE_H_
