#include "src/fuzz/replay.h"

#include <map>
#include <sstream>
#include <vector>

#include "src/fuzz/profile.h"
#include "src/oemu/instr.h"

namespace ozz::fuzz {
namespace {

// Source position of an instrumented site: basename:line.
std::string SitePosition(InstrId instr) {
  const oemu::InstrInfo& info = oemu::InstrRegistry::Info(instr);
  std::size_t slash = info.file.find_last_of('/');
  std::string base = slash == std::string::npos ? info.file : info.file.substr(slash + 1);
  std::ostringstream os;
  os << base << ":" << info.line;
  return os.str();
}

std::string DynPosition(const DynAccess& a) {
  std::ostringstream os;
  os << SitePosition(a.instr) << "#" << a.occurrence;
  return os.str();
}

bool ParsePosition(const std::string& token, std::string* pos, u32* occurrence) {
  std::size_t hash = token.find_last_of('#');
  if (hash == std::string::npos) {
    return false;
  }
  *pos = token.substr(0, hash);
  *occurrence = static_cast<u32>(std::stoul(token.substr(hash + 1)));
  return true;
}

}  // namespace

std::string SerializeMtiSpec(const MtiSpec& spec) {
  std::ostringstream os;
  os << "# OZZ replayable crash spec\n";
  for (const Call& call : spec.prog.calls) {
    os << "call " << call.desc->name;
    for (const ArgValue& a : call.args) {
      if (a.ref_call >= 0) {
        os << " r" << a.ref_call;
      } else {
        os << " " << a.value;
      }
    }
    os << "\n";
  }
  os << "pair " << spec.call_a << " " << spec.call_b << "\n";
  os << "test " << (spec.hint.store_test ? "store" : "load") << "\n";
  os << "sched " << DynPosition(spec.hint.sched) << " "
     << (spec.hint.sched_phase == rt::SwitchWhen::kBeforeAccess ? "before" : "after") << "\n";
  for (const DynAccess& a : spec.hint.reorder) {
    os << "reorder " << DynPosition(a) << "\n";
  }
  return os.str();
}

bool ParseMtiSpec(const std::string& text, const osk::SyscallTable& table,
                  const osk::KernelConfig& config, MtiSpec* spec, std::string* error) {
  MtiSpec out;
  struct PendingAccess {
    std::string pos;
    u32 occurrence;
    bool is_sched;
    rt::SwitchWhen phase = rt::SwitchWhen::kAfterAccess;
  };
  std::vector<PendingAccess> pending;
  bool saw_pair = false;

  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      std::ostringstream os;
      os << "line " << lineno << ": " << msg;
      *error = os.str();
    }
    return false;
  };

  while (std::getline(lines, line)) {
    ++lineno;
    std::istringstream tok(line);
    std::string kind;
    if (!(tok >> kind) || kind[0] == '#') {
      continue;
    }
    if (kind == "call") {
      std::string name;
      if (!(tok >> name)) {
        return fail("call without a name");
      }
      const osk::SyscallDesc* desc = table.Find(name);
      if (desc == nullptr) {
        return fail("unknown syscall " + name);
      }
      Call call;
      call.desc = desc;
      std::string arg;
      while (tok >> arg) {
        ArgValue v;
        if (!arg.empty() && arg[0] == 'r') {
          v.ref_call = static_cast<i32>(std::stol(arg.substr(1)));
        } else {
          v.value = static_cast<i64>(std::stoll(arg));
        }
        call.args.push_back(v);
      }
      if (call.args.size() != desc->args.size()) {
        return fail("arity mismatch for " + name);
      }
      out.prog.calls.push_back(std::move(call));
    } else if (kind == "pair") {
      if (!(tok >> out.call_a >> out.call_b)) {
        return fail("malformed pair");
      }
      saw_pair = true;
    } else if (kind == "test") {
      std::string type;
      tok >> type;
      out.hint.store_test = type == "store";
    } else if (kind == "sched" || kind == "reorder") {
      std::string token;
      if (!(tok >> token)) {
        return fail("missing position");
      }
      PendingAccess p;
      if (!ParsePosition(token, &p.pos, &p.occurrence)) {
        return fail("malformed position " + token);
      }
      p.is_sched = kind == "sched";
      if (p.is_sched) {
        std::string phase;
        tok >> phase;
        p.phase =
            phase == "before" ? rt::SwitchWhen::kBeforeAccess : rt::SwitchWhen::kAfterAccess;
      }
      pending.push_back(std::move(p));
    } else {
      return fail("unknown directive " + kind);
    }
  }
  lineno = 0;

  if (out.prog.calls.empty() || !saw_pair) {
    return fail("spec needs calls and a pair");
  }
  if (out.call_a >= out.prog.calls.size() || out.call_b >= out.prog.calls.size() ||
      out.call_a == out.call_b) {
    return fail("pair indices out of range");
  }

  // Resolve source positions to InstrIds by profiling the program: the
  // reordering call's trace visits every relevant site.
  ProgProfile profile = ProfileProg(out.prog, config);
  if (out.call_a >= profile.calls.size()) {
    return fail("program crashed before the pair while resolving");
  }
  std::map<std::string, std::map<u32, DynAccess>> by_position;
  for (const oemu::Event& e : profile.calls[out.call_a].trace) {
    if (e.IsAccess()) {
      by_position[SitePosition(e.instr)][e.occurrence] =
          DynAccess{e.instr, e.occurrence, e.access};
    }
  }
  for (const PendingAccess& p : pending) {
    auto pos_it = by_position.find(p.pos);
    if (pos_it == by_position.end()) {
      return fail("position " + p.pos + " not reached by the reordering call");
    }
    auto occ_it = pos_it->second.find(p.occurrence);
    if (occ_it == pos_it->second.end()) {
      return fail("occurrence not reached at " + p.pos);
    }
    if (p.is_sched) {
      out.hint.sched = occ_it->second;
      out.hint.sched_phase = p.phase;
    } else {
      out.hint.reorder.push_back(occ_it->second);
    }
  }
  *spec = std::move(out);
  return true;
}

}  // namespace ozz::fuzz
