#include "src/fuzz/report.h"

#include <sstream>

#include "src/base/check.h"
#include "src/obs/prof.h"
#include "src/oemu/instr.h"

namespace ozz::fuzz {

BugReport MakeBugReport(const MtiSpec& spec, const MtiResult& result) {
  obs::PhaseTimer phase_timer(obs::Phase::kReport);
  OZZ_CHECK(result.crashed);
  BugReport report;
  report.title = result.crash.title;
  report.subsystem = spec.prog.calls[spec.call_a].desc->subsystem;
  report.reorder_type = spec.hint.irq_test ? "IRQ" : spec.hint.store_test ? "S-S" : "L-L";
  report.prog = spec.prog.ToString();
  report.hint = spec.hint.ToString();
  report.oops_detail = result.crash.detail;

  for (const DynAccess& a : spec.hint.reorder) {
    report.reordered_accesses.push_back(oemu::InstrRegistry::Describe(a.instr));
  }

  std::ostringstream barrier;
  if (spec.hint.irq_test) {
    // Not a memory-ordering bug: the handler interleaved with its own CPU's
    // critical section. The repair is masking, not a barrier.
    barrier << "missing irq masking (e.g. spin_lock_irqsave/local_irq_save) around "
            << oemu::InstrRegistry::Describe(spec.hint.sched.instr);
    report.hypothetical_barrier = barrier.str();
    return report;
  }
  if (spec.hint.store_test) {
    barrier << "missing store barrier (e.g. smp_wmb/smp_store_release) between ";
    if (!spec.hint.reorder.empty()) {
      barrier << oemu::InstrRegistry::Describe(spec.hint.reorder.back().instr) << " and ";
    }
    barrier << oemu::InstrRegistry::Describe(spec.hint.sched.instr);
  } else {
    barrier << "missing load barrier (e.g. smp_rmb/smp_load_acquire) between "
            << oemu::InstrRegistry::Describe(spec.hint.sched.instr) << " and ";
    if (!spec.hint.reorder.empty()) {
      barrier << oemu::InstrRegistry::Describe(spec.hint.reorder.front().instr);
    }
  }
  report.hypothetical_barrier = barrier.str();
  return report;
}

namespace {

void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string BugReportToJson(const BugReport& report) {
  std::ostringstream os;
  os << "{\"title\":";
  AppendJsonString(os, report.title);
  os << ",\"subsystem\":";
  AppendJsonString(os, report.subsystem);
  os << ",\"reorder_type\":";
  AppendJsonString(os, report.reorder_type);
  os << ",\"hypothetical_barrier\":";
  AppendJsonString(os, report.hypothetical_barrier);
  os << ",\"program\":";
  AppendJsonString(os, report.prog);
  os << ",\"hint\":";
  AppendJsonString(os, report.hint);
  os << ",\"reordered_accesses\":[";
  for (std::size_t i = 0; i < report.reordered_accesses.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    AppendJsonString(os, report.reordered_accesses[i]);
  }
  os << "]}";
  return os.str();
}

std::string FormatBugReport(const BugReport& report) {
  std::ostringstream os;
  os << report.title << "\n";
  os << "  subsystem:  " << report.subsystem << "\n";
  os << "  reordering: " << report.reorder_type << "\n";
  os << "  program:    " << report.prog << "\n";
  os << "  hint:       " << report.hint << "\n";
  os << "  reordered accesses:\n";
  for (const std::string& a : report.reordered_accesses) {
    os << "    - " << a << "\n";
  }
  os << "  hypothetical barrier: " << report.hypothetical_barrier << "\n";
  if (!report.oops_detail.empty()) {
    os << "  detail: " << report.oops_detail << "\n";
  }
  return os.str();
}

}  // namespace ozz::fuzz
