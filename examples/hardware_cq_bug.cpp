// §4.5 "Concurrent accesses with hardware": the irdma completion-queue bug.
//
// The racing party here is not another kernel thread but the device's DMA
// engine — it writes CQE payloads and valid bits into memory the driver
// polls. The paper observes OEMU can emulate the driver-side load-load
// reordering if the fuzzer can drive the hardware; this example models the
// device as a concurrent "syscall" (a DMA completion) and shows OZZ finding
// the missing read barrier of the real irdma patch.
#include <cstdio>

#include "src/fuzz/fuzzer.h"
#include "src/fuzz/profile.h"

using namespace ozz;

int main() {
  std::printf("Hardware/driver OOO bug: irdma completion queue (paper §4.5)\n\n");

  fuzz::FuzzerOptions options;
  options.seed = 45;
  options.max_mti_runs = 500;
  options.stop_after_bugs = 1;
  fuzz::Fuzzer fuzzer(options);
  fuzz::Prog sti = fuzz::SeedProgramFor(fuzzer.table(), "rdma");
  std::printf("STI (device DMA modeled as a concurrent call): %s\n\n", sti.ToString().c_str());

  // The device keeps its write-side contract (payload before valid, a wmb);
  // sequential polling is always clean.
  fuzz::ProgProfile profile = fuzz::ProfileProg(sti, {});
  std::printf("sequential: hw_complete=%ld poll_cq=%ld (wr_id returned correctly)\n",
              profile.calls[0].retval, profile.calls[1].retval);

  // OZZ reorders the *driver's* loads: the valid check is satisfied with the
  // current value while the payload loads read the pre-DMA contents.
  fuzz::CampaignResult result = fuzzer.RunProg(sti);
  std::printf("\n[OZZ] %llu MTI runs, bugs: %zu\n",
              static_cast<unsigned long long>(result.mti_runs), result.bugs.size());
  if (!result.bugs.empty()) {
    std::printf("\n%s\n", FormatBugReport(result.bugs[0].report).c_str());
    std::printf("machine-readable: %s\n\n",
                fuzz::BugReportToJson(result.bugs[0].report).c_str());
  }

  // The irdma patch: a read barrier between the valid check and the payload.
  fuzz::FuzzerOptions fixed_options = options;
  fixed_options.kernel_config.fixed.insert("rdma");
  fuzz::Fuzzer fixed_fuzzer(fixed_options);
  fuzz::CampaignResult fixed = fixed_fuzzer.RunProg(sti);
  std::printf("[patched] with the missing read barrier added: %zu bugs (expected 0)\n",
              fixed.bugs.size());

  return (!result.bugs.empty() && fixed.bugs.empty()) ? 0 : 1;
}
