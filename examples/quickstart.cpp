// Quickstart: the OZZ pipeline end to end in ~80 lines.
//
// Builds the simulated kernel, takes the watch_queue seed program (the
// paper's Figure 1 scenario), and runs the full workflow of Figure 6:
//   1. profile the single-threaded input,
//   2. compute scheduling hints (Algorithm 1),
//   3. execute multi-threaded inputs under the custom scheduler with OEMU
//      reordering the hinted accesses,
//   4. report the OOO bug with the hypothetical-barrier location.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "src/fuzz/fuzzer.h"
#include "src/fuzz/profile.h"

using namespace ozz;

int main() {
  std::printf("OZZ quickstart: hunting the Figure 1 watch_queue bug\n\n");

  // A fuzzer instance owns the syscall-table view used for generation.
  fuzz::FuzzerOptions options;
  options.seed = 42;
  options.max_mti_runs = 500;
  options.stop_after_bugs = 1;
  fuzz::Fuzzer fuzzer(options);

  // Step 0: the single-threaded input (STI). In a real campaign OZZ
  // generates these from Syzlang-style templates; here we use the canonical
  // seed: wq$post(len=1); wq$read().
  fuzz::Prog sti = fuzz::SeedProgramFor(fuzzer.table(), "watch_queue");
  std::printf("STI: %s\n\n", sti.ToString().c_str());

  // Step 1 (§4.2): profile it — every memory access and barrier, per call.
  fuzz::ProgProfile profile = fuzz::ProfileProg(sti, {});
  for (std::size_t c = 0; c < profile.calls.size(); ++c) {
    std::size_t stores = 0;
    std::size_t loads = 0;
    for (const oemu::Event& e : profile.calls[c].trace) {
      stores += e.IsStore() ? 1 : 0;
      loads += e.IsLoad() ? 1 : 0;
    }
    std::printf("call %zu (%s): %zu stores, %zu loads profiled\n", c,
                sti.calls[c].desc->name.c_str(), stores, loads);
  }

  // Step 2 (§4.3): scheduling hints for the pair (wq$post, wq$read).
  std::vector<fuzz::SchedHint> hints =
      ComputeHints(profile.calls[0].trace, profile.calls[1].trace, fuzz::HintOptions{});
  std::printf("\n%zu scheduling hints; best (largest reorder set):\n  %s\n\n", hints.size(),
              hints.empty() ? "-" : hints[0].ToString().c_str());

  // Step 3 (§4.4): the campaign — MTIs under custom scheduler + OEMU.
  fuzz::CampaignResult result = fuzzer.RunProg(sti);
  std::printf("campaign: %llu MTI runs, %zu unique bug(s)\n\n",
              static_cast<unsigned long long>(result.mti_runs), result.bugs.size());

  // Step 4: the report a developer would receive.
  for (const fuzz::FoundBug& bug : result.bugs) {
    std::printf("%s\n", FormatBugReport(bug.report).c_str());
  }

  if (result.bugs.empty()) {
    std::printf("no bug found — unexpected for the buggy kernel configuration\n");
    return 1;
  }
  std::printf("Fix: add smp_wmb() between the buffer initialization and the head bump\n");
  std::printf("(and smp_rmb() on the reader side) — exactly the Figure 1 patch.\n");
  return 0;
}
