// Figure 1 anatomy: drives the watch_queue/pipe bug by hand — no fuzzer —
// using the OEMU control interfaces (Table 2) and the custom scheduler
// directly. This is the lowest-level way to use the library and shows
// exactly what happens at each step of Figure 5a.
#include <cstdio>

#include "src/fuzz/executor.h"
#include "src/fuzz/hints.h"
#include "src/fuzz/profile.h"
#include "src/fuzz/syslang.h"
#include "src/oemu/instr.h"
#include "src/osk/kernel.h"

using namespace ozz;

int main() {
  std::printf("Figure 1 anatomy: post_one_notification() vs pipe_read()\n\n");

  // Profile the two syscalls once to learn their instrumented instructions.
  osk::Kernel template_kernel;
  osk::InstallDefaultSubsystems(template_kernel);
  fuzz::Prog sti = fuzz::SeedProgramFor(template_kernel.table(), "watch_queue");
  fuzz::ProgProfile profile = fuzz::ProfileProg(sti, {});

  std::printf("writer (wq$post) shared accesses:\n");
  oemu::Trace writer = fuzz::FilterShared(profile.calls[0].trace, profile.calls[1].trace);
  for (const oemu::Event& e : writer) {
    if (e.IsAccess()) {
      std::printf("  %-5s %s\n", e.IsStore() ? "store" : "load",
                  oemu::InstrRegistry::Describe(e.instr).c_str());
    }
  }

  // Hand-build the Figure 5a hint: delay the two initialization stores
  // (buf.len, buf.ops) and interleave right after the head bump.
  fuzz::SchedHint hint;
  hint.store_test = true;
  for (const oemu::Event& e : writer) {
    if (e.IsStore()) {
      hint.reorder.push_back(fuzz::DynAccess{e.instr, e.occurrence, e.access});
    }
  }
  // Last store = the head bump: that is the scheduling point, not a delay.
  hint.sched = hint.reorder.back();
  hint.reorder.pop_back();
  hint.sched_phase = rt::SwitchWhen::kAfterAccess;

  std::printf("\nhand-built hint: %s\n\n", hint.ToString().c_str());

  fuzz::MtiSpec spec;
  spec.prog = sti;
  spec.call_a = 0;  // wq$post delays its stores
  spec.call_b = 1;  // wq$read observes
  spec.hint = hint;
  fuzz::MtiResult result = fuzz::RunMti(spec);

  std::printf("delayed stores: %llu, switch fired: %s\n",
              static_cast<unsigned long long>(result.stats.delayed_stores),
              result.switch_fired ? "yes" : "no");
  if (result.crashed) {
    std::printf("reader crashed: %s\n", result.crash.title.c_str());
    std::printf("\nExecution order achieved (Fig. 1): head bump (#8) -> head check (#14) -> "
                "ops deref (#18) -> ops init (#6): the reader called through an\n"
                "uninitialized buf->ops because the writer's initialization stores were "
                "still sitting in its virtual store buffer.\n");
    return 0;
  }
  std::printf("no crash — unexpected for the buggy configuration\n");
  return 1;
}
