// Case study 1 (§6.1, Figure 7): the TLS sk_prot publication bug (Bug #9),
// including why the earlier WRITE_ONCE/READ_ONCE "fix" silenced KCSAN
// without fixing the OOO bug.
//
// Walks through:
//   1. KCSAN-lite on the annotated accesses — silent (the blind spot),
//   2. an interleaving-only search — silent (no reordering, no bug),
//   3. OZZ's hypothetical store barrier test — crash in tls_setsockopt,
//   4. the patched kernel (smp_wmb in tls_init) — clean.
#include <cstdio>

#include "src/baseline/inorder_fuzzer.h"
#include "src/baseline/kcsan_lite.h"
#include "src/fuzz/fuzzer.h"
#include "src/fuzz/profile.h"

using namespace ozz;

int main() {
  std::printf("Case study: net/tls sk_prot swap (paper Figure 7, Bug #9)\n\n");

  fuzz::FuzzerOptions options;
  options.seed = 9;
  options.max_mti_runs = 500;
  options.stop_after_bugs = 1;
  fuzz::Fuzzer fuzzer(options);
  fuzz::Prog sti = fuzz::SeedProgramFor(fuzzer.table(), "tls");
  std::printf("STI: %s\n\n", sti.ToString().c_str());

  // 1. KCSAN's view: sk_prot is WRITE_ONCE/READ_ONCE annotated (the earlier,
  //    incorrect data-race fix), so the race is "marked" and not reported.
  fuzz::ProgProfile profile = fuzz::ProfileProg(sti, {});
  baseline::KcsanResult kcsan =
      baseline::FindDataRaces(profile.calls[1].trace, profile.calls[2].trace);
  std::printf("[KCSAN-lite]   reported races: %zu, annotated racy pairs suppressed: %zu\n",
              kcsan.reported.size(), kcsan.suppressed_by_annotation);
  std::printf("               -> silent on the sk_prot race: annotations pacify KCSAN\n\n");

  // 2. A conventional concurrency fuzzer: every interleaving, no reordering.
  fuzz::CampaignResult inorder = baseline::ExploreInterleavings(sti, {});
  std::printf("[interleaving] %llu interleaved executions, bugs: %zu\n",
              static_cast<unsigned long long>(inorder.mti_runs), inorder.bugs.size());
  std::printf("               -> in-order execution cannot manifest the bug (x86-64/TCG)\n\n");

  // 3. OZZ: delay the context-initialization stores past the WRITE_ONCE of
  //    sk_prot; the concurrent setsockopt takes the TLS path with an
  //    uninitialized context.
  fuzz::CampaignResult ozz = fuzzer.RunProg(sti);
  std::printf("[OZZ]          %llu MTI runs, bugs: %zu\n",
              static_cast<unsigned long long>(ozz.mti_runs), ozz.bugs.size());
  if (!ozz.bugs.empty()) {
    std::printf("\n%s\n", FormatBugReport(ozz.bugs[0].report).c_str());
  }

  // 4. The real fix: smp_wmb between ctx initialization and the swap.
  fuzz::FuzzerOptions fixed_options = options;
  fixed_options.kernel_config.fixed.insert("tls");
  fuzz::Fuzzer fixed_fuzzer(fixed_options);
  fuzz::CampaignResult fixed = fixed_fuzzer.RunProg(sti);
  std::printf("[patched]      same search on the fixed kernel: %zu bugs (expected 0)\n",
              fixed.bugs.size());

  return (!ozz.bugs.empty() && fixed.bugs.empty() && inorder.bugs.empty()) ? 0 : 1;
}
