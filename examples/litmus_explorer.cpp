// Litmus explorer: runs the classic two-thread litmus shapes under OEMU and
// prints every reachable outcome, with and without barriers — a compact
// demonstration of Table 1's semantics and of the LKMM compliance rules
// (§10.1). Mirrors what tools like herd7 report, but produced by the in-vivo
// emulation itself.
#include <cstdio>

#include "src/lkmm/litmus.h"

using namespace ozz;
using lkmm::LitmusEnv;
using lkmm::LitmusRegs;
using lkmm::LitmusResult;

namespace {

void Report(const char* name, const char* weak_desc, const LitmusResult& result,
            const lkmm::LitmusOutcome& weak) {
  std::printf("%-34s executions=%-5zu outcomes=%-3zu weak(%s): %s  lkmm-violations=%zu\n",
              name, result.executions, result.outcomes.size(), weak_desc,
              result.Saw(weak) ? "REACHED" : "forbidden", result.violations.size());
}

lkmm::LitmusOutcome Weak(u64 r00, u64 r01, u64 r10, u64 r11) {
  lkmm::LitmusOutcome o{};
  o[0] = r00;
  o[1] = r01;
  o[lkmm::kLitmusRegs] = r10;
  o[lkmm::kLitmusRegs + 1] = r11;
  return o;
}

}  // namespace

int main() {
  std::printf("Litmus outcomes under OEMU (in-vivo out-of-order emulation)\n\n");

  // MP: message passing.
  Report("MP (no barriers)", "r0=1,r1=0",
         lkmm::ExploreLitmus(
             [](LitmusEnv& e, LitmusRegs&) {
               OSK_STORE(e.x, 1);
               OSK_STORE(e.y, 1);
             },
             [](LitmusEnv& e, LitmusRegs& r) {
               r[0] = OSK_LOAD(e.y);
               r[1] = OSK_LOAD(e.x);
             }),
         Weak(0, 0, 1, 0));

  Report("MP (wmb + rmb)", "r0=1,r1=0",
         lkmm::ExploreLitmus(
             [](LitmusEnv& e, LitmusRegs&) {
               OSK_STORE(e.x, 1);
               OSK_SMP_WMB();
               OSK_STORE(e.y, 1);
             },
             [](LitmusEnv& e, LitmusRegs& r) {
               r[0] = OSK_LOAD(e.y);
               OSK_SMP_RMB();
               r[1] = OSK_LOAD(e.x);
             }),
         Weak(0, 0, 1, 0));

  Report("MP (release/acquire)", "r0=1,r1=0",
         lkmm::ExploreLitmus(
             [](LitmusEnv& e, LitmusRegs&) {
               OSK_STORE(e.x, 1);
               OSK_STORE_RELEASE(e.y, 1ull);
             },
             [](LitmusEnv& e, LitmusRegs& r) {
               r[0] = OSK_LOAD_ACQUIRE(e.y);
               r[1] = OSK_LOAD(e.x);
             }),
         Weak(0, 0, 1, 0));

  // SB: store buffering.
  Report("SB (no barriers)", "r0=0,r1=0",
         lkmm::ExploreLitmus(
             [](LitmusEnv& e, LitmusRegs& r) {
               OSK_STORE(e.x, 1);
               r[0] = OSK_LOAD(e.y);
             },
             [](LitmusEnv& e, LitmusRegs& r) {
               OSK_STORE(e.y, 1);
               r[0] = OSK_LOAD(e.x);
             }),
         Weak(0, 0, 0, 0));

  Report("SB (smp_mb both sides)", "r0=0,r1=0",
         lkmm::ExploreLitmus(
             [](LitmusEnv& e, LitmusRegs& r) {
               OSK_STORE(e.x, 1);
               OSK_SMP_MB();
               r[0] = OSK_LOAD(e.y);
             },
             [](LitmusEnv& e, LitmusRegs& r) {
               OSK_STORE(e.y, 1);
               OSK_SMP_MB();
               r[0] = OSK_LOAD(e.x);
             }),
         Weak(0, 0, 0, 0));

  // LB: load buffering — requires load-store reordering, out of scope (§3).
  Report("LB (no barriers)", "r0=1,r1=1",
         lkmm::ExploreLitmus(
             [](LitmusEnv& e, LitmusRegs& r) {
               r[0] = OSK_LOAD(e.x);
               OSK_STORE(e.y, 1);
             },
             [](LitmusEnv& e, LitmusRegs& r) {
               r[0] = OSK_LOAD(e.y);
               OSK_STORE(e.x, 1);
             }),
         Weak(1, 0, 1, 0));

  // CoRR: same-location read coherence.
  Report("CoRR (plain loads)", "r0=2,r1=old",
         lkmm::ExploreLitmus(
             [](LitmusEnv& e, LitmusRegs&) {
               OSK_STORE(e.x, 1);
               OSK_STORE(e.x, 2);
             },
             [](LitmusEnv& e, LitmusRegs& r) {
               r[0] = OSK_LOAD(e.x);
               r[1] = OSK_LOAD(e.x);
             }),
         Weak(0, 0, 2, 1));

  std::printf("\nExpected: weak outcomes REACHED only for barrier-less MP/SB; forbidden for\n"
              "barriered variants, LB (no load-store reordering) and CoRR (coherence).\n");
  return 0;
}
