// Case study 2 (§6.1, Figure 8): the RDS custom try-lock whose
// release_in_xmit() uses clear_bit() instead of clear_bit_unlock(),
// letting critical-section stores leak past the unlock.
//
// Shows why this bug is invisible to data-race detectors (the lock does
// provide mutual exclusion over the *accesses* — there is no data race to
// report) while OZZ catches it by actually reordering the stores against the
// bit clear.
#include <cstdio>

#include "src/baseline/inorder_fuzzer.h"
#include "src/baseline/kcsan_lite.h"
#include "src/baseline/ofence_lite.h"
#include "src/fuzz/fuzzer.h"
#include "src/fuzz/profile.h"

using namespace ozz;

int main() {
  std::printf("Case study: net/rds custom lock (paper Figure 8, Bug #1)\n\n");

  fuzz::FuzzerOptions options;
  options.seed = 1;
  options.max_mti_runs = 1000;
  options.stop_after_bugs = 1;
  fuzz::Fuzzer fuzzer(options);
  fuzz::Prog sti = fuzz::SeedProgramFor(fuzzer.table(), "rds");
  std::printf("STI: %s\n\n", sti.ToString().c_str());

  // The lock works as a lock — an interleaving-only search finds nothing.
  fuzz::CampaignResult inorder = baseline::ExploreInterleavings(sti, {});
  std::printf("[interleaving] %llu executions, bugs: %zu (mutual exclusion holds in-order)\n",
              static_cast<unsigned long long>(inorder.mti_runs), inorder.bugs.size());

  // OFence-lite *can* anchor on this one: an acquiring bitop paired with a
  // relaxed clear on the same word is its P3 pattern.
  baseline::OfenceResult ofence = baseline::RunOfenceAnalysis({});
  std::printf("[OFence-lite]  rds flagged: %s (P3: acquiring bitop + relaxed clear)\n\n",
              ofence.Flagged("rds") ? "yes" : "no");

  // OZZ: delay the message-swap store past the clear_bit commit; the next
  // lock holder reads a 32-byte length against a 4-byte buffer.
  fuzz::CampaignResult ozz = fuzzer.RunProg(sti);
  std::printf("[OZZ]          %llu MTI runs, bugs: %zu\n",
              static_cast<unsigned long long>(ozz.mti_runs), ozz.bugs.size());
  if (!ozz.bugs.empty()) {
    std::printf("\n%s\n", FormatBugReport(ozz.bugs[0].report).c_str());
  }

  // clear_bit_unlock() (release ordering) is the fix.
  fuzz::FuzzerOptions fixed_options = options;
  fixed_options.kernel_config.fixed.insert("rds");
  fuzz::Fuzzer fixed_fuzzer(fixed_options);
  fuzz::CampaignResult fixed = fixed_fuzzer.RunProg(sti);
  std::printf("[patched]      clear_bit_unlock version: %zu bugs (expected 0)\n",
              fixed.bugs.size());

  return (!ozz.bugs.empty() && fixed.bugs.empty() && inorder.bugs.empty()) ? 0 : 1;
}
