file(REMOVE_RECURSE
  "CMakeFiles/bench_mechanism.dir/bench_mechanism.cc.o"
  "CMakeFiles/bench_mechanism.dir/bench_mechanism.cc.o.d"
  "bench_mechanism"
  "bench_mechanism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mechanism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
