file(REMOVE_RECURSE
  "CMakeFiles/bench_selective.dir/bench_selective.cc.o"
  "CMakeFiles/bench_selective.dir/bench_selective.cc.o.d"
  "bench_selective"
  "bench_selective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
