# Empty compiler generated dependencies file for bench_table5_lmbench.
# This may be replaced when dependencies are built.
