file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_lmbench.dir/bench_table5_lmbench.cc.o"
  "CMakeFiles/bench_table5_lmbench.dir/bench_table5_lmbench.cc.o.d"
  "bench_table5_lmbench"
  "bench_table5_lmbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_lmbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
