file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_known_bugs.dir/bench_table4_known_bugs.cc.o"
  "CMakeFiles/bench_table4_known_bugs.dir/bench_table4_known_bugs.cc.o.d"
  "bench_table4_known_bugs"
  "bench_table4_known_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_known_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
