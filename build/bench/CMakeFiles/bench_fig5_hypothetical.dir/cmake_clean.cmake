file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_hypothetical.dir/bench_fig5_hypothetical.cc.o"
  "CMakeFiles/bench_fig5_hypothetical.dir/bench_fig5_hypothetical.cc.o.d"
  "bench_fig5_hypothetical"
  "bench_fig5_hypothetical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_hypothetical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
