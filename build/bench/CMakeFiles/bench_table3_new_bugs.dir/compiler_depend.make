# Empty compiler generated dependencies file for bench_table3_new_bugs.
# This may be replaced when dependencies are built.
