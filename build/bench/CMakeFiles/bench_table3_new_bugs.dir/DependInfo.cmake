
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_new_bugs.cc" "bench/CMakeFiles/bench_table3_new_bugs.dir/bench_table3_new_bugs.cc.o" "gcc" "bench/CMakeFiles/bench_table3_new_bugs.dir/bench_table3_new_bugs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ozz_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ozz_lkmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ozz_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ozz_osk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ozz_oemu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ozz_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ozz_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
