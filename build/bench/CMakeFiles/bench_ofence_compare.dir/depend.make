# Empty dependencies file for bench_ofence_compare.
# This may be replaced when dependencies are built.
