file(REMOVE_RECURSE
  "CMakeFiles/bench_ofence_compare.dir/bench_ofence_compare.cc.o"
  "CMakeFiles/bench_ofence_compare.dir/bench_ofence_compare.cc.o.d"
  "bench_ofence_compare"
  "bench_ofence_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ofence_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
