file(REMOVE_RECURSE
  "CMakeFiles/custom_lock_bug.dir/custom_lock_bug.cpp.o"
  "CMakeFiles/custom_lock_bug.dir/custom_lock_bug.cpp.o.d"
  "custom_lock_bug"
  "custom_lock_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_lock_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
