# Empty compiler generated dependencies file for custom_lock_bug.
# This may be replaced when dependencies are built.
