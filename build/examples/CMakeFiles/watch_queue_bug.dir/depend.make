# Empty dependencies file for watch_queue_bug.
# This may be replaced when dependencies are built.
