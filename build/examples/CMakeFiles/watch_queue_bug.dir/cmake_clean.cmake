file(REMOVE_RECURSE
  "CMakeFiles/watch_queue_bug.dir/watch_queue_bug.cpp.o"
  "CMakeFiles/watch_queue_bug.dir/watch_queue_bug.cpp.o.d"
  "watch_queue_bug"
  "watch_queue_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watch_queue_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
