# Empty dependencies file for tls_sockopt_bug.
# This may be replaced when dependencies are built.
