file(REMOVE_RECURSE
  "CMakeFiles/tls_sockopt_bug.dir/tls_sockopt_bug.cpp.o"
  "CMakeFiles/tls_sockopt_bug.dir/tls_sockopt_bug.cpp.o.d"
  "tls_sockopt_bug"
  "tls_sockopt_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_sockopt_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
