file(REMOVE_RECURSE
  "CMakeFiles/hardware_cq_bug.dir/hardware_cq_bug.cpp.o"
  "CMakeFiles/hardware_cq_bug.dir/hardware_cq_bug.cpp.o.d"
  "hardware_cq_bug"
  "hardware_cq_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_cq_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
