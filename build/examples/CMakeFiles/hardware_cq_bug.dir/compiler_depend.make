# Empty compiler generated dependencies file for hardware_cq_bug.
# This may be replaced when dependencies are built.
