# Empty compiler generated dependencies file for syslang_test.
# This may be replaced when dependencies are built.
