file(REMOVE_RECURSE
  "CMakeFiles/syslang_test.dir/syslang_test.cc.o"
  "CMakeFiles/syslang_test.dir/syslang_test.cc.o.d"
  "syslang_test"
  "syslang_test.pdb"
  "syslang_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syslang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
