# Empty compiler generated dependencies file for lkmm_property_test.
# This may be replaced when dependencies are built.
