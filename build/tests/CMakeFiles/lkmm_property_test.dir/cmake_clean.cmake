file(REMOVE_RECURSE
  "CMakeFiles/lkmm_property_test.dir/lkmm_property_test.cc.o"
  "CMakeFiles/lkmm_property_test.dir/lkmm_property_test.cc.o.d"
  "lkmm_property_test"
  "lkmm_property_test.pdb"
  "lkmm_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lkmm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
