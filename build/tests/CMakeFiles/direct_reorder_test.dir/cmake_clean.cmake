file(REMOVE_RECURSE
  "CMakeFiles/direct_reorder_test.dir/direct_reorder_test.cc.o"
  "CMakeFiles/direct_reorder_test.dir/direct_reorder_test.cc.o.d"
  "direct_reorder_test"
  "direct_reorder_test.pdb"
  "direct_reorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/direct_reorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
