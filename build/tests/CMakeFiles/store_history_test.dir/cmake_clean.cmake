file(REMOVE_RECURSE
  "CMakeFiles/store_history_test.dir/store_history_test.cc.o"
  "CMakeFiles/store_history_test.dir/store_history_test.cc.o.d"
  "store_history_test"
  "store_history_test.pdb"
  "store_history_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
