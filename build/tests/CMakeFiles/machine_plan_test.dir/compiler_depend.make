# Empty compiler generated dependencies file for machine_plan_test.
# This may be replaced when dependencies are built.
