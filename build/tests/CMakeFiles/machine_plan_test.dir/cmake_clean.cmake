file(REMOVE_RECURSE
  "CMakeFiles/machine_plan_test.dir/machine_plan_test.cc.o"
  "CMakeFiles/machine_plan_test.dir/machine_plan_test.cc.o.d"
  "machine_plan_test"
  "machine_plan_test.pdb"
  "machine_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
