file(REMOVE_RECURSE
  "CMakeFiles/subsys_test.dir/subsys_test.cc.o"
  "CMakeFiles/subsys_test.dir/subsys_test.cc.o.d"
  "subsys_test"
  "subsys_test.pdb"
  "subsys_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subsys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
