# Empty dependencies file for corpus_report_test.
# This may be replaced when dependencies are built.
