file(REMOVE_RECURSE
  "CMakeFiles/corpus_report_test.dir/corpus_report_test.cc.o"
  "CMakeFiles/corpus_report_test.dir/corpus_report_test.cc.o.d"
  "corpus_report_test"
  "corpus_report_test.pdb"
  "corpus_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
