file(REMOVE_RECURSE
  "CMakeFiles/litmus_n_test.dir/litmus_n_test.cc.o"
  "CMakeFiles/litmus_n_test.dir/litmus_n_test.cc.o.d"
  "litmus_n_test"
  "litmus_n_test.pdb"
  "litmus_n_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_n_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
