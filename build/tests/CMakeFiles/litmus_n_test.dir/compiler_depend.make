# Empty compiler generated dependencies file for litmus_n_test.
# This may be replaced when dependencies are built.
