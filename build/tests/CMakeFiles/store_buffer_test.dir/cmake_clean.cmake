file(REMOVE_RECURSE
  "CMakeFiles/store_buffer_test.dir/store_buffer_test.cc.o"
  "CMakeFiles/store_buffer_test.dir/store_buffer_test.cc.o.d"
  "store_buffer_test"
  "store_buffer_test.pdb"
  "store_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
