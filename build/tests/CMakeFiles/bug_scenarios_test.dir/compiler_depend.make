# Empty compiler generated dependencies file for bug_scenarios_test.
# This may be replaced when dependencies are built.
