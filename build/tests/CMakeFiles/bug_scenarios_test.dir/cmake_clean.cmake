file(REMOVE_RECURSE
  "CMakeFiles/bug_scenarios_test.dir/bug_scenarios_test.cc.o"
  "CMakeFiles/bug_scenarios_test.dir/bug_scenarios_test.cc.o.d"
  "bug_scenarios_test"
  "bug_scenarios_test.pdb"
  "bug_scenarios_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bug_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
