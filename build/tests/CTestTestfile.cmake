# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/store_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/store_history_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/fuzzer_test[1]_include.cmake")
include("/root/repo/build/tests/bug_scenarios_test[1]_include.cmake")
include("/root/repo/build/tests/litmus_test[1]_include.cmake")
include("/root/repo/build/tests/checker_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/hints_test[1]_include.cmake")
include("/root/repo/build/tests/syslang_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/cell_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_report_test[1]_include.cmake")
include("/root/repo/build/tests/subsys_test[1]_include.cmake")
include("/root/repo/build/tests/lkmm_property_test[1]_include.cmake")
include("/root/repo/build/tests/litmus_n_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/machine_plan_test[1]_include.cmake")
include("/root/repo/build/tests/selective_test[1]_include.cmake")
include("/root/repo/build/tests/litmus_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/direct_reorder_test[1]_include.cmake")
