# Empty dependencies file for ozz_oemu.
# This may be replaced when dependencies are built.
