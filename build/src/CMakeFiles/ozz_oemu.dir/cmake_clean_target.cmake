file(REMOVE_RECURSE
  "libozz_oemu.a"
)
