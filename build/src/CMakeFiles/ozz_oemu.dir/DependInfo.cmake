
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oemu/instr.cc" "src/CMakeFiles/ozz_oemu.dir/oemu/instr.cc.o" "gcc" "src/CMakeFiles/ozz_oemu.dir/oemu/instr.cc.o.d"
  "/root/repo/src/oemu/runtime.cc" "src/CMakeFiles/ozz_oemu.dir/oemu/runtime.cc.o" "gcc" "src/CMakeFiles/ozz_oemu.dir/oemu/runtime.cc.o.d"
  "/root/repo/src/oemu/store_buffer.cc" "src/CMakeFiles/ozz_oemu.dir/oemu/store_buffer.cc.o" "gcc" "src/CMakeFiles/ozz_oemu.dir/oemu/store_buffer.cc.o.d"
  "/root/repo/src/oemu/store_history.cc" "src/CMakeFiles/ozz_oemu.dir/oemu/store_history.cc.o" "gcc" "src/CMakeFiles/ozz_oemu.dir/oemu/store_history.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ozz_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ozz_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
