file(REMOVE_RECURSE
  "CMakeFiles/ozz_oemu.dir/oemu/instr.cc.o"
  "CMakeFiles/ozz_oemu.dir/oemu/instr.cc.o.d"
  "CMakeFiles/ozz_oemu.dir/oemu/runtime.cc.o"
  "CMakeFiles/ozz_oemu.dir/oemu/runtime.cc.o.d"
  "CMakeFiles/ozz_oemu.dir/oemu/store_buffer.cc.o"
  "CMakeFiles/ozz_oemu.dir/oemu/store_buffer.cc.o.d"
  "CMakeFiles/ozz_oemu.dir/oemu/store_history.cc.o"
  "CMakeFiles/ozz_oemu.dir/oemu/store_history.cc.o.d"
  "libozz_oemu.a"
  "libozz_oemu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ozz_oemu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
