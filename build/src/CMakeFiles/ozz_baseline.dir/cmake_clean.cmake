file(REMOVE_RECURSE
  "CMakeFiles/ozz_baseline.dir/baseline/inorder_fuzzer.cc.o"
  "CMakeFiles/ozz_baseline.dir/baseline/inorder_fuzzer.cc.o.d"
  "CMakeFiles/ozz_baseline.dir/baseline/kcsan_lite.cc.o"
  "CMakeFiles/ozz_baseline.dir/baseline/kcsan_lite.cc.o.d"
  "CMakeFiles/ozz_baseline.dir/baseline/ofence_lite.cc.o"
  "CMakeFiles/ozz_baseline.dir/baseline/ofence_lite.cc.o.d"
  "libozz_baseline.a"
  "libozz_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ozz_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
