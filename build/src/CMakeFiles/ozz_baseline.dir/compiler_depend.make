# Empty compiler generated dependencies file for ozz_baseline.
# This may be replaced when dependencies are built.
