file(REMOVE_RECURSE
  "libozz_baseline.a"
)
