# Empty compiler generated dependencies file for ozz_lkmm.
# This may be replaced when dependencies are built.
