file(REMOVE_RECURSE
  "libozz_lkmm.a"
)
