file(REMOVE_RECURSE
  "CMakeFiles/ozz_lkmm.dir/lkmm/checker.cc.o"
  "CMakeFiles/ozz_lkmm.dir/lkmm/checker.cc.o.d"
  "CMakeFiles/ozz_lkmm.dir/lkmm/litmus.cc.o"
  "CMakeFiles/ozz_lkmm.dir/lkmm/litmus.cc.o.d"
  "libozz_lkmm.a"
  "libozz_lkmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ozz_lkmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
