file(REMOVE_RECURSE
  "libozz_base.a"
)
