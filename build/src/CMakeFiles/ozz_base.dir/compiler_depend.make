# Empty compiler generated dependencies file for ozz_base.
# This may be replaced when dependencies are built.
