file(REMOVE_RECURSE
  "CMakeFiles/ozz_base.dir/base/log.cc.o"
  "CMakeFiles/ozz_base.dir/base/log.cc.o.d"
  "libozz_base.a"
  "libozz_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ozz_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
