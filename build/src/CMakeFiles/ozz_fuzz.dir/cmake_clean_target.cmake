file(REMOVE_RECURSE
  "libozz_fuzz.a"
)
