file(REMOVE_RECURSE
  "CMakeFiles/ozz_fuzz.dir/fuzz/corpus.cc.o"
  "CMakeFiles/ozz_fuzz.dir/fuzz/corpus.cc.o.d"
  "CMakeFiles/ozz_fuzz.dir/fuzz/executor.cc.o"
  "CMakeFiles/ozz_fuzz.dir/fuzz/executor.cc.o.d"
  "CMakeFiles/ozz_fuzz.dir/fuzz/fuzzer.cc.o"
  "CMakeFiles/ozz_fuzz.dir/fuzz/fuzzer.cc.o.d"
  "CMakeFiles/ozz_fuzz.dir/fuzz/hints.cc.o"
  "CMakeFiles/ozz_fuzz.dir/fuzz/hints.cc.o.d"
  "CMakeFiles/ozz_fuzz.dir/fuzz/profile.cc.o"
  "CMakeFiles/ozz_fuzz.dir/fuzz/profile.cc.o.d"
  "CMakeFiles/ozz_fuzz.dir/fuzz/replay.cc.o"
  "CMakeFiles/ozz_fuzz.dir/fuzz/replay.cc.o.d"
  "CMakeFiles/ozz_fuzz.dir/fuzz/report.cc.o"
  "CMakeFiles/ozz_fuzz.dir/fuzz/report.cc.o.d"
  "CMakeFiles/ozz_fuzz.dir/fuzz/syslang.cc.o"
  "CMakeFiles/ozz_fuzz.dir/fuzz/syslang.cc.o.d"
  "libozz_fuzz.a"
  "libozz_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ozz_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
