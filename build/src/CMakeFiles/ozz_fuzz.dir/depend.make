# Empty dependencies file for ozz_fuzz.
# This may be replaced when dependencies are built.
