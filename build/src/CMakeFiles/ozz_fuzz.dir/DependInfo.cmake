
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuzz/corpus.cc" "src/CMakeFiles/ozz_fuzz.dir/fuzz/corpus.cc.o" "gcc" "src/CMakeFiles/ozz_fuzz.dir/fuzz/corpus.cc.o.d"
  "/root/repo/src/fuzz/executor.cc" "src/CMakeFiles/ozz_fuzz.dir/fuzz/executor.cc.o" "gcc" "src/CMakeFiles/ozz_fuzz.dir/fuzz/executor.cc.o.d"
  "/root/repo/src/fuzz/fuzzer.cc" "src/CMakeFiles/ozz_fuzz.dir/fuzz/fuzzer.cc.o" "gcc" "src/CMakeFiles/ozz_fuzz.dir/fuzz/fuzzer.cc.o.d"
  "/root/repo/src/fuzz/hints.cc" "src/CMakeFiles/ozz_fuzz.dir/fuzz/hints.cc.o" "gcc" "src/CMakeFiles/ozz_fuzz.dir/fuzz/hints.cc.o.d"
  "/root/repo/src/fuzz/profile.cc" "src/CMakeFiles/ozz_fuzz.dir/fuzz/profile.cc.o" "gcc" "src/CMakeFiles/ozz_fuzz.dir/fuzz/profile.cc.o.d"
  "/root/repo/src/fuzz/replay.cc" "src/CMakeFiles/ozz_fuzz.dir/fuzz/replay.cc.o" "gcc" "src/CMakeFiles/ozz_fuzz.dir/fuzz/replay.cc.o.d"
  "/root/repo/src/fuzz/report.cc" "src/CMakeFiles/ozz_fuzz.dir/fuzz/report.cc.o" "gcc" "src/CMakeFiles/ozz_fuzz.dir/fuzz/report.cc.o.d"
  "/root/repo/src/fuzz/syslang.cc" "src/CMakeFiles/ozz_fuzz.dir/fuzz/syslang.cc.o" "gcc" "src/CMakeFiles/ozz_fuzz.dir/fuzz/syslang.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ozz_osk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ozz_oemu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ozz_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ozz_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
