# Empty compiler generated dependencies file for ozz_rt.
# This may be replaced when dependencies are built.
