file(REMOVE_RECURSE
  "CMakeFiles/ozz_rt.dir/rt/machine.cc.o"
  "CMakeFiles/ozz_rt.dir/rt/machine.cc.o.d"
  "libozz_rt.a"
  "libozz_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ozz_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
