file(REMOVE_RECURSE
  "libozz_rt.a"
)
