# Empty dependencies file for ozz_osk.
# This may be replaced when dependencies are built.
