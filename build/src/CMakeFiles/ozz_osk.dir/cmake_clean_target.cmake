file(REMOVE_RECURSE
  "libozz_osk.a"
)
