
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osk/kalloc.cc" "src/CMakeFiles/ozz_osk.dir/osk/kalloc.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/kalloc.cc.o.d"
  "/root/repo/src/osk/kasan.cc" "src/CMakeFiles/ozz_osk.dir/osk/kasan.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/kasan.cc.o.d"
  "/root/repo/src/osk/kernel.cc" "src/CMakeFiles/ozz_osk.dir/osk/kernel.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/kernel.cc.o.d"
  "/root/repo/src/osk/lockdep.cc" "src/CMakeFiles/ozz_osk.dir/osk/lockdep.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/lockdep.cc.o.d"
  "/root/repo/src/osk/oops.cc" "src/CMakeFiles/ozz_osk.dir/osk/oops.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/oops.cc.o.d"
  "/root/repo/src/osk/subsys/all.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/all.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/all.cc.o.d"
  "/root/repo/src/osk/subsys/bpf_sockmap.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/bpf_sockmap.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/bpf_sockmap.cc.o.d"
  "/root/repo/src/osk/subsys/buffer_head.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/buffer_head.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/buffer_head.cc.o.d"
  "/root/repo/src/osk/subsys/fs_fdtable.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/fs_fdtable.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/fs_fdtable.cc.o.d"
  "/root/repo/src/osk/subsys/gsm.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/gsm.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/gsm.cc.o.d"
  "/root/repo/src/osk/subsys/mq_sbitmap.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/mq_sbitmap.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/mq_sbitmap.cc.o.d"
  "/root/repo/src/osk/subsys/nbd.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/nbd.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/nbd.cc.o.d"
  "/root/repo/src/osk/subsys/rdma.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/rdma.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/rdma.cc.o.d"
  "/root/repo/src/osk/subsys/rds.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/rds.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/rds.cc.o.d"
  "/root/repo/src/osk/subsys/ringbuf.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/ringbuf.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/ringbuf.cc.o.d"
  "/root/repo/src/osk/subsys/smc.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/smc.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/smc.cc.o.d"
  "/root/repo/src/osk/subsys/synthetic.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/synthetic.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/synthetic.cc.o.d"
  "/root/repo/src/osk/subsys/tls.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/tls.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/tls.cc.o.d"
  "/root/repo/src/osk/subsys/unix_sock.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/unix_sock.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/unix_sock.cc.o.d"
  "/root/repo/src/osk/subsys/vlan.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/vlan.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/vlan.cc.o.d"
  "/root/repo/src/osk/subsys/vmci.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/vmci.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/vmci.cc.o.d"
  "/root/repo/src/osk/subsys/watch_queue.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/watch_queue.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/watch_queue.cc.o.d"
  "/root/repo/src/osk/subsys/xsk.cc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/xsk.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/subsys/xsk.cc.o.d"
  "/root/repo/src/osk/syscall.cc" "src/CMakeFiles/ozz_osk.dir/osk/syscall.cc.o" "gcc" "src/CMakeFiles/ozz_osk.dir/osk/syscall.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ozz_oemu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ozz_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ozz_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
