file(REMOVE_RECURSE
  "CMakeFiles/tool_ozz_fuzz.dir/ozz_fuzz.cc.o"
  "CMakeFiles/tool_ozz_fuzz.dir/ozz_fuzz.cc.o.d"
  "ozz_fuzz"
  "ozz_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_ozz_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
