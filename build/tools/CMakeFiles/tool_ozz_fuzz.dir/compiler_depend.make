# Empty compiler generated dependencies file for tool_ozz_fuzz.
# This may be replaced when dependencies are built.
