# Empty dependencies file for tool_ozz_repro.
# This may be replaced when dependencies are built.
