file(REMOVE_RECURSE
  "CMakeFiles/tool_ozz_repro.dir/ozz_repro.cc.o"
  "CMakeFiles/tool_ozz_repro.dir/ozz_repro.cc.o.d"
  "ozz_repro"
  "ozz_repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_ozz_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
